//! Machine-readable experiment artifacts (CSV series, JSON summaries).
//!
//! Every write goes through [`coop_telemetry::write_atomic`] (tmp file +
//! fsync + rename), so a crash — or a SIGKILL from the resume-smoke CI
//! job — can never leave a torn CSV or JSON artifact behind: files are
//! either absent or complete.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use coop_telemetry::write_atomic;
use serde::Serialize;

/// Process-wide override for [`OutputDir::default_dir`], set at most once
/// (the CLI sets it from `--out-dir` before any runner executes).
static DEFAULT_ROOT: OnceLock<PathBuf> = OnceLock::new();

/// A directory experiment artifacts are written into (created on demand).
///
/// # Example
///
/// ```no_run
/// use coop_experiments::OutputDir;
/// let out = OutputDir::new("target/experiments");
/// out.csv("fig4a_completion_cdf", &["time_s", "fraction"], &[(1.0, 0.5)])
///     .unwrap();
/// ```
#[derive(Clone, Debug)]
pub struct OutputDir {
    root: PathBuf,
}

impl OutputDir {
    /// Creates a handle rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        OutputDir { root: root.into() }
    }

    /// The default artifact directory: `target/experiments`, unless
    /// [`OutputDir::set_default_root`] installed an override.
    pub fn default_dir() -> Self {
        match DEFAULT_ROOT.get() {
            Some(root) => OutputDir::new(root.clone()),
            None => OutputDir::new("target/experiments"),
        }
    }

    /// Redirects [`OutputDir::default_dir`] for the rest of the process.
    ///
    /// Returns `false` (leaving the original override in place) if a root
    /// was already installed; the first caller wins so that runners never
    /// see the default directory change mid-run.
    pub fn set_default_root(root: impl Into<PathBuf>) -> bool {
        DEFAULT_ROOT.set(root.into()).is_ok()
    }

    /// The root path.
    pub fn path(&self) -> &Path {
        &self.root
    }

    /// Writes a two-column CSV (e.g. a figure series).
    ///
    /// # Errors
    ///
    /// Returns any I/O error.
    pub fn csv(
        &self,
        name: &str,
        headers: &[&str],
        rows: &[(f64, f64)],
    ) -> std::io::Result<PathBuf> {
        let rows: Vec<Vec<String>> = rows
            .iter()
            .map(|&(a, b)| vec![format!("{a}"), format!("{b}")])
            .collect();
        self.csv_rows(name, headers, &rows)
    }

    /// Writes a CSV with arbitrary stringified rows (atomically).
    ///
    /// # Errors
    ///
    /// Returns any I/O error.
    pub fn csv_rows(
        &self,
        name: &str,
        headers: &[&str],
        rows: &[Vec<String>],
    ) -> std::io::Result<PathBuf> {
        let path = self.root.join(format!("{name}.csv"));
        let mut buf = Vec::new();
        writeln!(buf, "{}", headers.join(","))?;
        for row in rows {
            writeln!(buf, "{}", row.join(","))?;
        }
        write_atomic(&path, &buf)?;
        Ok(path)
    }

    /// Serializes `value` as pretty JSON (atomically).
    ///
    /// # Errors
    ///
    /// Returns any I/O or serialization error.
    pub fn json<T: Serialize>(&self, name: &str, value: &T) -> std::io::Result<PathBuf> {
        let path = self.root.join(format!("{name}.json"));
        let data = serde_json::to_string_pretty(value)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        write_atomic(&path, data.as_bytes())?;
        Ok(path)
    }
}

/// Convenience: writes a series CSV into the default directory.
///
/// # Errors
///
/// Returns any I/O error.
pub fn write_csv(name: &str, headers: &[&str], rows: &[(f64, f64)]) -> std::io::Result<PathBuf> {
    OutputDir::default_dir().csv(name, headers, rows)
}

/// Convenience: writes a JSON summary into the default directory.
///
/// # Errors
///
/// Returns any I/O or serialization error.
pub fn write_json<T: Serialize>(name: &str, value: &T) -> std::io::Result<PathBuf> {
    OutputDir::default_dir().json(name, value)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp() -> OutputDir {
        let dir = std::env::temp_dir().join(format!(
            "coop-exp-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        OutputDir::new(dir)
    }

    #[test]
    fn csv_round_trip() {
        let out = tmp();
        let path = out
            .csv("series", &["x", "y"], &[(1.0, 2.0), (3.0, 4.0)])
            .unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert_eq!(text, "x,y\n1,2\n3,4\n");
    }

    #[test]
    fn json_round_trip() {
        #[derive(serde::Serialize)]
        struct S {
            a: u32,
        }
        let out = tmp();
        let path = out.json("summary", &S { a: 7 }).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert!(text.contains("\"a\": 7"));
    }

    #[test]
    fn csv_rows_arbitrary_width() {
        let out = tmp();
        let path = out
            .csv_rows(
                "wide",
                &["a", "b", "c"],
                &[vec!["1".into(), "2".into(), "3".into()]],
            )
            .unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert_eq!(text.lines().count(), 2);
    }
}
