//! Plain-text table rendering for experiment reports.

use std::fmt;

/// A simple ASCII table: headers plus rows of strings, padded per column.
///
/// # Example
///
/// ```
/// use coop_experiments::Table;
/// let mut t = Table::new(vec!["Algorithm", "E"]);
/// t.row(vec!["Altruism".into(), "0.91".into()]);
/// let s = t.render();
/// assert!(s.contains("Altruism"));
/// assert!(s.contains('|'));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns true if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with `|` separators and a header rule.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (i, w) in widths.iter().enumerate().take(cols) {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!(" {cell:<w$} |"));
            }
            line
        };
        out.push_str(&render_row(&self.headers, &widths));
        out.push('\n');
        let mut rule = String::from("|");
        for w in &widths {
            rule.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        out.push_str(&rule);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a float with sensible defaults for report cells (4 significant
/// decimals, `inf`/`nan` spelled out).
pub(crate) fn num(x: f64) -> String {
    if x.is_nan() {
        "n/a".to_string()
    } else if x.is_infinite() {
        "inf".to_string()
    } else if x != 0.0 && x.abs() < 0.001 {
        format!("{x:.2e}")
    } else {
        format!("{x:.4}")
    }
}

/// Formats a probability as a percentage with one decimal.
pub(crate) fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_padded_columns() {
        let mut t = Table::new(vec!["a", "long header"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer cell".into(), "2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines have equal width.
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w), "{s}");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        Table::new(vec!["a"]).row(vec!["x".into(), "y".into()]);
    }

    #[test]
    fn empty_table_renders_headers() {
        let t = Table::new(vec!["only"]);
        assert!(t.is_empty());
        assert!(t.render().contains("only"));
    }

    #[test]
    fn number_formatting() {
        assert_eq!(num(f64::INFINITY), "inf");
        assert_eq!(num(f64::NAN), "n/a");
        assert_eq!(num(0.5), "0.5000");
        assert_eq!(num(0.0), "0.0000");
        assert!(num(1e-9).contains('e'));
        assert_eq!(pct(0.714), "71.4%");
    }
}
