//! `coop-experiments` — regenerate the paper's tables and figures.
//!
//! ```text
//! coop-experiments <table1|table2|table3|fig1|fig2|fig3|fig4|fig4-churn|fig4-scale|fig5|fig6|fluid|ablations|extensions|all>
//!                  [--scale quick|default|paper] [--seed N] [--replicates N]
//!                  [--jobs N] [--out-dir DIR]
//!                  [--telemetry] [--trace-out FILE] [--probe-every N]
//!                  [--churn RATE] [--loss PROB] [--seeder-exit FRACTION]
//!                  [--peers N[,N...]]
//! ```
//!
//! Reports print to stdout; CSV/JSON series land in `target/experiments/`
//! (or `--out-dir`). `--replicates N` aggregates the simulation figures
//! over N consecutive seeds; `--jobs N` caps the worker threads that
//! independent simulations fan out across (results are byte-identical for
//! any job count).
//!
//! For the simulation figures (fig4/fig5/fig6), `--telemetry` records
//! counters/probes/spans and writes a `manifest.json` next to the
//! artifacts, `--trace-out FILE` additionally streams the kept trace
//! events to a JSONL file (implying `--telemetry`), and `--probe-every N`
//! sets the round-probe cadence. Telemetry is purely observational:
//! reports and figure artifacts are byte-identical with it on or off.

use coop_experiments::{runners, Artifact, Executor, OutputDir, RunSpec, SpecError, USAGE};

fn main() {
    let spec = match RunSpec::parse(std::env::args().skip(1)) {
        Ok(spec) => spec,
        Err(SpecError::Help) => {
            println!("{USAGE}");
            return;
        }
        Err(err) => {
            eprintln!("error: {err}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    if let Some(dir) = &spec.out_dir {
        OutputDir::set_default_root(dir.clone());
    }
    let executor = spec.executor();
    match spec.artifact {
        Artifact::All => {
            for artifact in Artifact::ALL {
                run_one(artifact, &spec, &executor);
            }
            println!(
                "artifacts written to {}",
                OutputDir::default_dir().path().display()
            );
        }
        artifact => run_one(artifact, &spec, &executor),
    }
}

fn run_one(artifact: Artifact, spec: &RunSpec, executor: &Executor) {
    let (scale, seed) = (spec.scale, spec.seed);
    let replicated = spec.replicates > 1 && artifact.supports_replicates();
    let seeds = spec.seeds();
    let telemetry = spec.telemetry_opts();
    let out = OutputDir::default_dir();
    match artifact {
        Artifact::Table1 => println!("{}", runners::table1::run(scale, seed).render()),
        Artifact::Table2 => println!("{}", runners::table2::run(scale, seed).render()),
        Artifact::Table3 => println!("{}", runners::table3::run(scale, seed).render()),
        Artifact::Fig1 => println!("{}", runners::fig1::run(scale, seed).render()),
        Artifact::Fig2 => println!("{}", runners::fig2::run(scale, seed).render()),
        Artifact::Fig3 => println!("{}", runners::fig3::run(scale, seed).render()),
        Artifact::Fig4 if replicated => println!(
            "{}",
            runners::fig4::run_replicated_with_telemetry(
                scale, &seeds, executor, &telemetry, &out
            )
            .0
            .render()
        ),
        Artifact::Fig5 if replicated => println!(
            "{}",
            runners::fig5::run_replicated_with_telemetry(
                scale, &seeds, executor, &telemetry, &out
            )
            .0
            .render()
        ),
        Artifact::Fig6 if replicated => println!(
            "{}",
            runners::fig6::run_replicated_with_telemetry(
                scale, &seeds, executor, &telemetry, &out
            )
            .0
            .render()
        ),
        Artifact::Fig4 => println!(
            "{}",
            runners::fig4::run_with_telemetry(scale, seed, executor, &telemetry, &out)
                .0
                .render()
        ),
        Artifact::Fig4Scale => {
            let (report, perf, _) = runners::fig4_scale::run_with_telemetry(
                scale,
                seed,
                spec.peers.as_deref(),
                executor,
                &telemetry,
                &out,
            );
            println!("{}", report.render());
            println!("{}", perf.render());
        }
        Artifact::Fig4Churn => println!(
            "{}",
            runners::fig4_churn::run_with_telemetry(
                scale,
                seed,
                spec.fault_plan(),
                executor,
                &telemetry,
                &out
            )
            .0
            .render()
        ),
        Artifact::Fig5 => println!(
            "{}",
            runners::fig5::run_with_telemetry(scale, seed, executor, &telemetry, &out)
                .0
                .render()
        ),
        Artifact::Fig6 => println!(
            "{}",
            runners::fig6::run_with_telemetry(scale, seed, executor, &telemetry, &out)
                .0
                .render()
        ),
        Artifact::Ablations => {
            println!("{}", runners::ablations::run_with(scale, seed, executor).render());
        }
        Artifact::Extensions => println!("{}", runners::extensions::run(scale, seed).render()),
        Artifact::Fluid => println!("{}", runners::fluid::run(scale, seed).render()),
        Artifact::All => unreachable!("expanded by the caller"),
    }
}
