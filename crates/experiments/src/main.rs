//! `coop-experiments` — regenerate the paper's tables and figures.
//!
//! ```text
//! coop-experiments <table1|table2|table3|fig1|fig2|fig3|fig4|fig4-churn|fig4-scale|fig5|fig6|fig-epoch|fig-consensus|fluid|ablations|extensions|all>
//! coop-experiments sweep <scenario|spec.json|pack-dir>
//! coop-experiments perf-diff --baseline FILE --current FILE [--tolerance SHARE]
//!                  [--scale quick|default|paper] [--seed N] [--replicates N]
//!                  [--jobs N] [--out-dir DIR]
//!                  [--telemetry] [--trace-out FILE] [--probe-every N]
//!                  [--profile] [--profile-every K]
//!                  [--retries N] [--job-timeout SECS] [--checkpoint-every ROUNDS]
//!                  [--resume DIR]
//!                  [--churn RATE] [--loss PROB] [--seeder-exit FRACTION]
//!                  [--peers N[,N...]]
//! ```
//!
//! `sweep` runs a declarative scenario pack: a built-in scenario name (see
//! `--help`), one spec JSON file, or a directory of them. Each scenario
//! compiles onto the same journaled executor as the figure runners, so
//! `--resume`, `--retries`, `--telemetry` and byte-identical artifacts all
//! apply unchanged. The `--churn`/`--loss`/`--seeder-exit` flags are
//! deprecated in favor of a scenario spec's `faults` fragment (behavior is
//! unchanged while they last).
//!
//! Reports print to stdout; CSV/JSON series land in `target/experiments/`
//! (or `--out-dir`). `--replicates N` aggregates the simulation figures
//! over N consecutive seeds; `--jobs N` caps the worker threads that
//! independent simulations fan out across (results are byte-identical for
//! any job count).
//!
//! For the simulation figures (fig4/fig5/fig6), `--telemetry` records
//! counters/probes/spans and writes a `manifest.json` next to the
//! artifacts, `--trace-out FILE` additionally streams the kept trace
//! events to a JSONL file (implying `--telemetry`), and `--probe-every N`
//! sets the round-probe cadence. `--profile` (implying `--telemetry`)
//! additionally times the round loop's phases and writes a
//! `profile.json` next to the artifacts; `--profile-every K` samples the
//! phase timers onto every K-th batch slot. Telemetry and profiling are
//! purely observational: reports and figure artifacts are byte-identical
//! with them on or off. `perf-diff` compares two `profile.json`
//! snapshots (no simulations run) and exits 1 on structural regressions.
//!
//! # Crash safety
//!
//! Simulation batches (fig4, fig4-churn, fig5, fig6, all) append every
//! finished job to a fsynced `journal.jsonl` next to the artifacts. If a
//! run is killed, `--resume DIR` replays that ledger: completed jobs are
//! served from the journal, only the missing ones re-run, and the final
//! artifact set is byte-identical to an uninterrupted run. A job that
//! panics or exceeds `--job-timeout` is retried `--retries` times with
//! deterministic backoff; if it still fails, the rest of the batch
//! completes, the failed cells are listed in `failures.json` (naming
//! mechanism, population and seed), and the process exits with code 1.
//! `--checkpoint-every K` additionally captures a mid-run simulation
//! checkpoint every K rounds inside each job — purely observational, the
//! results are identical for any cadence.

use std::process::ExitCode;
use std::sync::Arc;

use coop_experiments::exec::write_failures_json;
use coop_experiments::journal::{sweep_artifact_id, RunHeader};
use coop_experiments::{
    load_pack, runners, usage, Artifact, BatchError, Executor, JournalReplay, OutputDir,
    PanicInject, RunJournal, RunSpec, ScenarioPack, SpecError,
};

fn main() -> ExitCode {
    let spec = match RunSpec::parse(std::env::args().skip(1)) {
        Ok(spec) => spec,
        Err(SpecError::Help) => {
            println!("{}", usage());
            return ExitCode::SUCCESS;
        }
        Err(err) => {
            eprintln!("error: {err}");
            eprintln!("{}", usage());
            return ExitCode::from(2);
        }
    };
    if let Some(note) = spec.deprecation_notice() {
        eprintln!("{note}");
    }
    // perf-diff compares two existing profile.json files; it runs no
    // simulations, so none of the pack/journal wiring below applies.
    if spec.artifact == Artifact::PerfDiff {
        return runners::perf_diff::run_cli(&spec);
    }
    // Scenario packs load before any journal wiring: the pack fingerprint
    // is part of the run identity `--resume` validates, and a bad spec
    // should fail fast with a field-level error, not after a journal
    // exists.
    let pack: Option<ScenarioPack> = if spec.artifact == Artifact::Sweep {
        let arg = spec.scenario.as_deref().expect("parse requires a scenario for sweep");
        match load_pack(arg) {
            Ok(pack) => Some(pack),
            Err(err) => {
                eprintln!("error: {err}");
                return ExitCode::from(2);
            }
        }
    } else {
        None
    };
    let inject = match PanicInject::from_env() {
        Ok(inject) => inject,
        Err(err) => {
            eprintln!("error: {err}");
            return ExitCode::from(2);
        }
    };
    let mut executor = spec.executor().with_panic_inject(inject);

    // Journal/replay wiring. The journal covers the batch-simulation
    // artifacts; analytic tables re-run in milliseconds and need none.
    let journaled = spec.artifact.supports_resume();
    let mut journal = None;
    if let Some(dir) = &spec.resume {
        OutputDir::set_default_root(dir.clone());
        let replay = match JournalReplay::load(dir) {
            Ok(replay) => replay,
            Err(err) => {
                eprintln!(
                    "error: --resume {}: cannot read {}: {err}",
                    dir.display(),
                    RunJournal::path_in(dir).display()
                );
                return ExitCode::from(2);
            }
        };
        let expected = run_header(&spec, pack.as_ref());
        match &replay.header {
            Some(header) if *header == expected => {}
            Some(header) => {
                eprintln!(
                    "error: --resume {}: journal belongs to a different run \
                     (journal: {} {} seed {} x{}; requested: {} {} seed {} x{})",
                    dir.display(),
                    header.artifact,
                    header.scale,
                    header.seed,
                    header.replicates,
                    expected.artifact,
                    expected.scale,
                    expected.seed,
                    expected.replicates,
                );
                return ExitCode::from(2);
            }
            None => {
                eprintln!(
                    "error: --resume {}: journal has no valid run header",
                    dir.display()
                );
                return ExitCode::from(2);
            }
        }
        if replay.dropped_lines > 0 {
            eprintln!(
                "[resume] {} corrupt journal line(s) dropped; affected jobs will re-run",
                replay.dropped_lines
            );
        }
        eprintln!(
            "[resume] replaying {} completed job(s) from {}",
            replay.completed_count(),
            RunJournal::path_in(dir).display()
        );
        match RunJournal::open_append(dir) {
            Ok(j) => {
                let j = Arc::new(j);
                journal = Some(Arc::clone(&j));
                executor = executor.with_replay(Arc::new(replay)).with_journal(j);
            }
            Err(err) => {
                eprintln!(
                    "error: --resume {}: cannot append to journal: {err}",
                    dir.display()
                );
                return ExitCode::from(2);
            }
        }
    } else {
        if let Some(dir) = &spec.out_dir {
            OutputDir::set_default_root(dir.clone());
        }
        if journaled {
            let out = OutputDir::default_dir();
            match RunJournal::create(out.path(), &run_header(&spec, pack.as_ref())) {
                Ok(j) => {
                    let j = Arc::new(j);
                    journal = Some(Arc::clone(&j));
                    executor = executor.with_journal(j);
                }
                // A journal is a safety net, never a reason not to run.
                Err(err) => eprintln!(
                    "warning: could not create journal in {}: {err}",
                    out.path().display()
                ),
            }
        }
    }

    let mut errors: Vec<BatchError> = Vec::new();
    match spec.artifact {
        Artifact::All => {
            for artifact in Artifact::ALL {
                run_one(artifact, &spec, &executor, &mut errors);
            }
            println!(
                "artifacts written to {}",
                OutputDir::default_dir().path().display()
            );
        }
        Artifact::Sweep => {
            let pack = pack.as_ref().expect("loaded above for sweep");
            let (report, sweep_errors) = runners::sweep::try_run_pack(
                pack,
                spec.scale,
                spec.seed,
                spec.replicates,
                &executor,
                &spec.telemetry_opts(),
                &OutputDir::default_dir(),
            );
            println!("{}", report.render());
            errors.extend(sweep_errors);
        }
        artifact => run_one(artifact, &spec, &executor, &mut errors),
    }

    let out = OutputDir::default_dir();
    if errors.is_empty() {
        if let Some(journal) = &journal {
            if let Err(err) = journal.record_artifact_dir(out.path()) {
                eprintln!("warning: could not record artifact hashes: {err}");
            }
        }
        return ExitCode::SUCCESS;
    }
    for err in &errors {
        eprintln!("error: {err}");
    }
    match write_failures_json(&out, &errors) {
        Ok(path) => eprintln!("failure report written to {}", path.display()),
        Err(err) => eprintln!("warning: could not write failures.json: {err}"),
    }
    ExitCode::FAILURE
}

/// The run identity `--resume` validates against the journal header. For
/// scenario sweeps the artifact id embeds the pack fingerprint, so a
/// resumed sweep refuses a journal written by a different (or edited)
/// pack.
fn run_header(spec: &RunSpec, pack: Option<&ScenarioPack>) -> RunHeader {
    let artifact = match pack {
        Some(pack) => sweep_artifact_id(pack.fingerprint()),
        None => spec.artifact.name().to_string(),
    };
    RunHeader {
        artifact,
        scale: spec.scale.name().to_string(),
        seed: spec.seed,
        replicates: spec.replicates,
    }
}

/// Runs one artifact, printing its report on success and collecting batch
/// failures (the run continues; the caller decides the exit code).
fn run_one(artifact: Artifact, spec: &RunSpec, executor: &Executor, errors: &mut Vec<BatchError>) {
    let (scale, seed) = (spec.scale, spec.seed);
    let replicated = spec.replicates > 1 && artifact.supports_replicates();
    let seeds = spec.seeds();
    let telemetry = spec.telemetry_opts();
    let out = OutputDir::default_dir();
    // Collects one batch runner's outcome: print the report or keep the
    // error for the final failures.json / exit code.
    macro_rules! batch {
        ($result:expr) => {
            match $result {
                Ok(report) => println!("{}", report.render()),
                Err(err) => errors.push(err),
            }
        };
    }
    match artifact {
        Artifact::Table1 => println!("{}", runners::table1::run(scale, seed).render()),
        Artifact::Table2 => println!("{}", runners::table2::run(scale, seed).render()),
        Artifact::Table3 => println!("{}", runners::table3::run(scale, seed).render()),
        Artifact::Fig1 => println!("{}", runners::fig1::run(scale, seed).render()),
        Artifact::Fig2 => println!("{}", runners::fig2::run(scale, seed).render()),
        Artifact::Fig3 => println!("{}", runners::fig3::run(scale, seed).render()),
        Artifact::Fig4 if replicated => batch!(runners::fig4::try_run_replicated_with_telemetry(
            scale, &seeds, executor, &telemetry, &out
        )
        .map(|r| r.0)),
        Artifact::Fig5 if replicated => batch!(runners::fig5::try_run_replicated_with_telemetry(
            scale, &seeds, executor, &telemetry, &out
        )
        .map(|r| r.0)),
        Artifact::Fig6 if replicated => batch!(runners::fig6::try_run_replicated_with_telemetry(
            scale, &seeds, executor, &telemetry, &out
        )
        .map(|r| r.0)),
        Artifact::Fig4 => batch!(runners::fig4::try_run_with_telemetry(
            scale, seed, executor, &telemetry, &out
        )
        .map(|r| r.0)),
        Artifact::Fig4Scale => {
            match runners::fig4_scale::try_run_with_telemetry(
                scale,
                seed,
                spec.peers.as_deref(),
                executor,
                &telemetry,
                &out,
            ) {
                Ok((report, perf, _)) => {
                    println!("{}", report.render());
                    println!("{}", perf.render());
                }
                Err(err) => errors.push(err),
            }
        }
        Artifact::FigEpoch => batch!(runners::fig_epoch::try_run_with_telemetry(
            scale, seed, None, executor, &telemetry, &out
        )
        .map(|r| r.0)),
        // fig-consensus sweeps one population; `--peers` overrides it
        // (first entry wins — the flag's list form belongs to fig4-scale).
        Artifact::FigConsensus => batch!(runners::fig_consensus::try_run_with_telemetry(
            scale,
            seed,
            spec.peers.as_ref().and_then(|p| p.first().copied()),
            None,
            executor,
            &telemetry,
            &out
        )
        .map(|r| r.0)),
        Artifact::Fig4Churn => batch!(runners::fig4_churn::try_run_with_telemetry(
            scale,
            seed,
            spec.fault_plan(),
            executor,
            &telemetry,
            &out
        )
        .map(|r| r.0)),
        Artifact::Fig5 => batch!(runners::fig5::try_run_with_telemetry(
            scale, seed, executor, &telemetry, &out
        )
        .map(|r| r.0)),
        Artifact::Fig6 => batch!(runners::fig6::try_run_with_telemetry(
            scale, seed, executor, &telemetry, &out
        )
        .map(|r| r.0)),
        Artifact::Ablations => batch!(runners::ablations::try_run_with(scale, seed, executor)),
        Artifact::Extensions => println!("{}", runners::extensions::run(scale, seed).render()),
        Artifact::Fluid => println!("{}", runners::fluid::run(scale, seed).render()),
        Artifact::All => unreachable!("expanded by the caller"),
        Artifact::Sweep => unreachable!("dispatched by the caller"),
        Artifact::PerfDiff => unreachable!("dispatched before journal wiring"),
    }
}
