//! `coop-experiments` — regenerate the paper's tables and figures.
//!
//! ```text
//! coop-experiments <table1|table2|table3|fig1|fig2|fig3|fig4|fig5|fig6|fluid|ablations|extensions|all>
//!                  [--scale quick|default|paper] [--seed N]
//! ```
//!
//! Reports print to stdout; CSV/JSON series land in `target/experiments/`.

use coop_experiments::{runners, Scale};

fn usage() -> ! {
    eprintln!(
        "usage: coop-experiments <table1|table2|table3|fig1|fig2|fig3|fig4|fig5|fig6|fluid|ablations|extensions|all> \
         [--scale quick|default|paper] [--seed N] [--replicates N]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command: Option<String> = None;
    let mut scale = Scale::Default;
    let mut seed = 42u64;
    let mut replicates = 1u64;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let v = it.next().unwrap_or_else(|| usage());
                scale = Scale::parse(&v).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage()
                });
            }
            "--seed" => {
                let v = it.next().unwrap_or_else(|| usage());
                seed = v.parse().unwrap_or_else(|_| {
                    eprintln!("invalid seed '{v}'");
                    usage()
                });
            }
            "--replicates" => {
                let v = it.next().unwrap_or_else(|| usage());
                replicates = v.parse().unwrap_or_else(|_| {
                    eprintln!("invalid replicate count '{v}'");
                    usage()
                });
                if replicates == 0 {
                    eprintln!("replicates must be positive");
                    usage();
                }
            }
            "--help" | "-h" => usage(),
            other if command.is_none() && !other.starts_with('-') => {
                command = Some(other.to_string());
            }
            other => {
                eprintln!("unexpected argument '{other}'");
                usage();
            }
        }
    }
    let command = command.unwrap_or_else(|| usage());
    let run_one = |name: &str| match name {
        "table1" => println!("{}", runners::table1::run(scale, seed).render()),
        "table2" => println!("{}", runners::table2::run(scale, seed).render()),
        "table3" => println!("{}", runners::table3::run(scale, seed).render()),
        "fig1" => println!("{}", runners::fig1::run(scale, seed).render()),
        "fig2" => println!("{}", runners::fig2::run(scale, seed).render()),
        "fig3" => println!("{}", runners::fig3::run(scale, seed).render()),
        "fig4" if replicates > 1 => {
            let seeds: Vec<u64> = (0..replicates).map(|i| seed + i).collect();
            println!("{}", runners::fig4::run_replicated(scale, &seeds).render());
        }
        "fig5" if replicates > 1 => {
            let seeds: Vec<u64> = (0..replicates).map(|i| seed + i).collect();
            println!("{}", runners::fig5::run_replicated(scale, &seeds).render());
        }
        "fig6" if replicates > 1 => {
            let seeds: Vec<u64> = (0..replicates).map(|i| seed + i).collect();
            println!("{}", runners::fig6::run_replicated(scale, &seeds).render());
        }
        "fig4" => println!("{}", runners::fig4::run(scale, seed).render()),
        "fig5" => println!("{}", runners::fig5::run(scale, seed).render()),
        "fig6" => println!("{}", runners::fig6::run(scale, seed).render()),
        "ablations" => println!("{}", runners::ablations::run(scale, seed).render()),
        "extensions" => println!("{}", runners::extensions::run(scale, seed).render()),
        "fluid" => println!("{}", runners::fluid::run(scale, seed).render()),
        other => {
            eprintln!("unknown experiment '{other}'");
            usage();
        }
    };
    if command == "all" {
        for name in [
            "table1", "fig1", "fig2", "fig3", "table2", "table3", "fig4", "fig5", "fig6", "fluid",
            "ablations", "extensions",
        ] {
            run_one(name);
        }
        println!("artifacts written to target/experiments/");
    } else {
        run_one(&command);
    }
}
