//! Run-level telemetry for the experiment harness.
//!
//! The swarm layer's [`coop_telemetry::Recorder`] observes one simulation;
//! this module scales that to a *batch*: [`TelemetryOpts`] carries the
//! CLI's `--telemetry` / `--trace-out` / `--probe-every` choices,
//! [`BatchTrace`] collects every job's report **in slot order** (so trace
//! files are byte-stable for any `--jobs` count), flags slow jobs, writes
//! the JSONL trace, and assembles the per-run
//! [`manifest.json`](coop_telemetry::RunManifest).
//!
//! Wall-clock readings live only here — in job spans, progress lines, and
//! the manifest — never in figure artifacts, which stay byte-deterministic
//! whether telemetry is on or off.

use std::path::{Path, PathBuf};

use coop_telemetry::profile::{phase, work};
use coop_telemetry::{
    fingerprint_debug, PhaseStat, PhaseTiming, ProfileReport, Recorder, RunManifest, RunProfile,
    TelemetryConfig, TelemetryReport, TraceEvent,
};

use crate::{OutputDir, Scale};

/// A job is flagged slow when its wall time exceeds this multiple of the
/// batch median.
pub const SLOW_JOB_FACTOR: u64 = 2;

/// Telemetry options for one experiment run, as selected on the CLI.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TelemetryOpts {
    /// `--telemetry`: record counters/probes/spans for this run.
    pub enabled: bool,
    /// `--trace-out FILE`: also stream kept events to a JSONL file
    /// (implies `enabled`).
    pub trace_out: Option<PathBuf>,
    /// `--probe-every N`: round-probe cadence (default 10).
    pub probe_every: u64,
    /// `--profile`: time the round loop's phases and write `profile.json`
    /// (implies `enabled` — work accounting rides the recorder).
    pub profile: bool,
    /// `--profile-every K`: profile every K-th batch slot (default 1 =
    /// every job). Sampling bounds timer overhead on huge grids while the
    /// deterministic work counters still cover every job.
    pub profile_every: u64,
}

impl Default for TelemetryOpts {
    fn default() -> Self {
        TelemetryOpts::disabled()
    }
}

impl TelemetryOpts {
    /// Telemetry off (the default; zero overhead beyond one branch per
    /// probe site).
    pub fn disabled() -> Self {
        TelemetryOpts {
            enabled: false,
            trace_out: None,
            probe_every: 10,
            profile: false,
            profile_every: 1,
        }
    }

    /// Whether any telemetry output was requested (`--trace-out` and
    /// `--profile` imply `--telemetry`).
    pub fn is_enabled(&self) -> bool {
        self.enabled || self.trace_out.is_some() || self.profile
    }

    /// Whether the job in batch `slot` carries a live profiler: profiling
    /// is on and the slot lands on the `--profile-every` cadence.
    pub fn profile_due(&self, slot: usize) -> bool {
        self.profile && (slot as u64).is_multiple_of(self.profile_every.max(1))
    }

    /// The per-simulation recorder configuration this run uses.
    pub fn recorder_config(&self) -> TelemetryConfig {
        TelemetryConfig {
            probe_every: self.probe_every.max(1),
            ..TelemetryConfig::default()
        }
    }

    /// A recorder honoring these options (disabled when telemetry is off).
    pub fn recorder(&self) -> Recorder {
        if self.is_enabled() {
            Recorder::enabled(self.recorder_config())
        } else {
            Recorder::disabled()
        }
    }
}

/// One traced simulation job's gathered data, tagged with its batch slot.
#[derive(Debug)]
pub struct JobTrace {
    /// Slot index in the batch (results order).
    pub slot: usize,
    /// Job label (mechanism name).
    pub label: String,
    /// The job's seed.
    pub seed: u64,
    /// Wall-clock milliseconds the job took.
    pub wall_ms: u64,
    /// Whether the job exceeded [`SLOW_JOB_FACTOR`]× the batch median.
    pub slow: bool,
    /// Retries (after a panic or watchdog timeout) before this job
    /// completed; zero for first-attempt successes and journal-cache hits.
    pub retries: u64,
    /// Population size of the job's swarm (for `profile.json` work rows).
    pub peers: u64,
    /// Everything the job's recorder gathered.
    pub report: TelemetryReport,
    /// Phase timings when this slot carried a live profiler
    /// (`--profile`, subject to `--profile-every` sampling); `None` for
    /// unprofiled, journal-replayed, and unsampled jobs.
    pub profile: Option<ProfileReport>,
}

/// Slot-ordered telemetry for one executed batch plus the run's
/// wall-clock phases.
#[derive(Debug, Default)]
pub struct BatchTrace {
    /// Per-job traces, in slot order.
    pub jobs: Vec<JobTrace>,
    /// Wall-clock phases of the surrounding run, in execution order.
    pub phases: Vec<PhaseTiming>,
    /// The owning scenario's `(name, spec fingerprint)` when the batch
    /// came from a scenario-pack sweep; carried into the manifest.
    pub scenario: Option<(String, u64)>,
    /// Total journal append + fsync nanoseconds across the batch (set by
    /// the executor when a journal is wired; surfaced in `profile.json`
    /// as the `batch.journal_fsync` phase).
    pub journal_fsync_ns: u64,
}

impl BatchTrace {
    /// Wraps slot-ordered job traces, computing slow-job flags (wall time
    /// above [`SLOW_JOB_FACTOR`]× the batch median; needs ≥ 2 jobs).
    pub fn new(mut jobs: Vec<JobTrace>) -> Self {
        if jobs.len() >= 2 {
            let mut walls: Vec<u64> = jobs.iter().map(|j| j.wall_ms).collect();
            walls.sort_unstable();
            let median = walls[walls.len() / 2];
            for j in &mut jobs {
                j.slow = j.wall_ms > SLOW_JOB_FACTOR * median.max(1);
            }
        }
        BatchTrace {
            jobs,
            phases: Vec::new(),
            scenario: None,
            journal_fsync_ns: 0,
        }
    }

    /// Appends a named wall-clock phase.
    pub fn push_phase(&mut self, name: &str, wall_ms: u64) {
        self.phases.push(PhaseTiming {
            name: name.to_string(),
            wall_ms,
        });
    }

    /// Counter totals summed across all jobs, sorted by name.
    pub fn merged_counters(&self) -> Vec<(String, u64)> {
        let mut merged = std::collections::BTreeMap::new();
        for job in &self.jobs {
            for (name, value) in &job.report.counters {
                *merged.entry(name.clone()).or_insert(0) += value;
            }
        }
        merged.into_iter().collect()
    }

    /// Total kept events across all jobs (per-job streams plus one
    /// synthesized [`TraceEvent::JobSpan`] each).
    pub fn events_kept(&self) -> u64 {
        self.jobs
            .iter()
            .map(|j| j.report.events.len() as u64 + 1)
            .sum()
    }

    /// The trace as JSONL lines, in slot order: each job's
    /// [`TraceEvent::JobSpan`] followed by its event stream. Ordering
    /// depends only on slots, never on worker scheduling.
    pub fn jsonl_lines(&self) -> Vec<String> {
        let mut lines = Vec::new();
        for job in &self.jobs {
            lines.push(
                TraceEvent::JobSpan {
                    slot: job.slot as u64,
                    label: job.label.clone(),
                    seed: job.seed,
                    wall_ms: job.wall_ms,
                    slow: job.slow,
                    retries: job.retries,
                }
                .to_jsonl(),
            );
            lines.extend(job.report.events.iter().map(TraceEvent::to_jsonl));
        }
        lines
    }

    /// Writes the slot-ordered JSONL trace to `path`, returning the line
    /// count.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from directory creation or the write.
    pub fn write_jsonl(&self, path: &Path) -> std::io::Result<usize> {
        let lines = self.jsonl_lines();
        let mut text = lines.join("\n");
        if !text.is_empty() {
            text.push('\n');
        }
        coop_telemetry::write_atomic_str(path, &text)?;
        Ok(lines.len())
    }

    /// Writes the kept round-probe time series as one CSV into `out`
    /// (slot order, so the file is byte-stable for any `--jobs` count).
    /// The `_telemetry` suffix marks it as a telemetry output rather than
    /// a figure artifact — it exists only when telemetry is on.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the write.
    pub fn write_probe_csv(
        &self,
        out: &OutputDir,
        figure: &str,
    ) -> std::io::Result<std::path::PathBuf> {
        let mut rows = Vec::new();
        for job in &self.jobs {
            for event in &job.report.events {
                if let TraceEvent::RoundProbe {
                    round,
                    sim_s,
                    active,
                    bootstrapped,
                    completed,
                    inflight,
                    ..
                } = event
                {
                    rows.push(vec![
                        job.label.clone(),
                        job.seed.to_string(),
                        round.to_string(),
                        format!("{sim_s}"),
                        active.to_string(),
                        bootstrapped.to_string(),
                        completed.to_string(),
                        inflight.to_string(),
                    ]);
                }
            }
        }
        out.csv_rows(
            &format!("{figure}_round_probes_telemetry"),
            &[
                "mechanism",
                "seed",
                "round",
                "sim_s",
                "active",
                "bootstrapped",
                "completed",
                "inflight",
            ],
            &rows,
        )
    }

    /// Human progress lines, one per job in slot order (wall time and
    /// slow flags are wall-clock data; these go to stderr, never into
    /// artifacts).
    pub fn progress_lines(&self, figure: &str) -> Vec<String> {
        let total = self.jobs.len();
        self.jobs
            .iter()
            .map(|j| {
                format!(
                    "[{figure}] job {}/{total} {} seed={} {}ms{}",
                    j.slot + 1,
                    j.label,
                    j.seed,
                    j.wall_ms,
                    if j.slow { " SLOW" } else { "" }
                )
            })
            .collect()
    }

    /// Assembles the run's [`RunManifest`] from this batch.
    pub fn manifest(
        &self,
        artifact: &str,
        scale: Scale,
        seed: u64,
        replicates: u64,
        jobs: u64,
        attack: &str,
    ) -> RunManifest {
        let mut mechanisms: Vec<String> = Vec::new();
        for job in &self.jobs {
            if !mechanisms.contains(&job.label) {
                mechanisms.push(job.label.clone());
            }
        }
        let (scenario, spec_fingerprint) = match &self.scenario {
            Some((name, fp)) => (name.clone(), *fp),
            None => (String::new(), 0),
        };
        RunManifest {
            artifact: artifact.to_string(),
            scale: scale.name().to_string(),
            config_fingerprint: fingerprint_debug(&scale.config(seed)),
            seed,
            replicates,
            jobs,
            mechanisms,
            attack: attack.to_string(),
            scenario,
            spec_fingerprint,
            phases: self.phases.clone(),
            counters: self.merged_counters(),
            events_kept: self.events_kept(),
        }
    }

    /// Assembles the run's [`RunProfile`] (`profile.json`): per-job phase
    /// reports merged in slot order, the batch's own wall phases mapped
    /// onto the `batch.*` taxonomy, the deterministic `swarm.work.*` and
    /// `*.rebuilds` structural counters (the latter feed `perf-diff`'s
    /// availability-rebuild gate), and one work row per job.
    /// Journal-replayed jobs carry empty reports, so their rows show zero
    /// visits (ratio `null`).
    pub fn run_profile(&self, artifact: &str, scale: Scale) -> RunProfile {
        let mut merged = ProfileReport::default();
        let mut profiled_jobs = 0u64;
        for job in &self.jobs {
            if let Some(profile) = &job.profile {
                profiled_jobs += 1;
                merged.merge(profile);
            }
        }
        let mut phases = merged.phases;
        for timing in &self.phases {
            let name = match timing.name.as_str() {
                "simulate" => phase::BATCH_SIMULATE,
                "write_artifacts" => phase::BATCH_WRITE_ARTIFACTS,
                _ => continue,
            };
            push_phase_ns(&mut phases, name, timing.wall_ms.saturating_mul(1_000_000));
        }
        if self.journal_fsync_ns > 0 {
            push_phase_ns(&mut phases, phase::BATCH_JOURNAL_FSYNC, self.journal_fsync_ns);
        }
        RunProfile {
            artifact: artifact.to_string(),
            scale: scale.name().to_string(),
            jobs: self.jobs.len() as u64,
            profiled_jobs,
            phases,
            work: self
                .merged_counters()
                .into_iter()
                .filter(|(name, _)| {
                    name.starts_with("swarm.work.") || name.ends_with(".rebuilds")
                })
                .collect(),
            per_job: self
                .jobs
                .iter()
                .map(|j| coop_telemetry::JobWork {
                    label: j.label.clone(),
                    seed: j.seed,
                    peers: j.peers,
                    visited: j.report.counter(work::PEERS_VISITED),
                    productive: j.report.counter(work::PEERS_PRODUCTIVE),
                })
                .collect(),
        }
    }
}

/// Adds `ns` as one observation of `name`, keeping `phases` sorted.
fn push_phase_ns(phases: &mut Vec<(String, PhaseStat)>, name: &str, ns: u64) {
    let mut stat = PhaseStat::default();
    stat.observe_ns(ns);
    match phases.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
        Ok(i) => phases[i].1.merge(&stat),
        Err(i) => phases.insert(i, (name.to_string(), stat)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(slot: usize, wall_ms: u64, counters: Vec<(String, u64)>) -> JobTrace {
        JobTrace {
            slot,
            label: format!("m{slot}"),
            seed: 42,
            wall_ms,
            slow: false,
            retries: 0,
            peers: 80,
            report: TelemetryReport {
                counters,
                ..TelemetryReport::default()
            },
            profile: None,
        }
    }

    #[test]
    fn slow_jobs_exceed_twice_the_median() {
        let batch = BatchTrace::new(vec![
            job(0, 100, vec![]),
            job(1, 110, vec![]),
            job(2, 500, vec![]),
            job(3, 90, vec![]),
        ]);
        let slow: Vec<usize> = batch
            .jobs
            .iter()
            .filter(|j| j.slow)
            .map(|j| j.slot)
            .collect();
        assert_eq!(slow, vec![2]);
    }

    #[test]
    fn single_job_is_never_slow() {
        let batch = BatchTrace::new(vec![job(0, 10_000, vec![])]);
        assert!(!batch.jobs[0].slow);
    }

    #[test]
    fn counters_merge_across_jobs() {
        let batch = BatchTrace::new(vec![
            job(0, 1, vec![("swarm.rounds".into(), 10), ("swarm.grants".into(), 3)]),
            job(1, 1, vec![("swarm.rounds".into(), 5)]),
        ]);
        assert_eq!(
            batch.merged_counters(),
            vec![
                ("swarm.grants".to_string(), 3),
                ("swarm.rounds".to_string(), 15)
            ]
        );
    }

    #[test]
    fn jsonl_leads_each_job_with_its_span() {
        let batch = BatchTrace::new(vec![job(0, 7, vec![])]);
        let lines = batch.jsonl_lines();
        assert_eq!(lines.len(), 1);
        let doc = coop_telemetry::json::parse(&lines[0]).unwrap();
        assert_eq!(
            doc.get("type").and_then(coop_telemetry::json::Json::as_str),
            Some("job_span")
        );
        assert_eq!(batch.events_kept(), 1);
    }

    #[test]
    fn opts_imply_and_configure() {
        assert!(!TelemetryOpts::disabled().is_enabled());
        assert!(!TelemetryOpts::disabled().recorder().is_enabled());
        let opts = TelemetryOpts {
            enabled: false,
            trace_out: Some(PathBuf::from("t.jsonl")),
            probe_every: 4,
            ..TelemetryOpts::disabled()
        };
        assert!(opts.is_enabled(), "--trace-out implies telemetry");
        assert_eq!(opts.recorder_config().probe_every, 4);
        assert!(opts.recorder().is_enabled());
    }

    #[test]
    fn profile_implies_telemetry_and_samples_slots() {
        let opts = TelemetryOpts {
            profile: true,
            ..TelemetryOpts::disabled()
        };
        assert!(opts.is_enabled(), "--profile implies telemetry");
        assert!(opts.profile_due(0) && opts.profile_due(1), "default cadence is 1");
        let sampled = TelemetryOpts {
            profile: true,
            profile_every: 3,
            ..TelemetryOpts::disabled()
        };
        let due: Vec<usize> = (0..7).filter(|&s| sampled.profile_due(s)).collect();
        assert_eq!(due, vec![0, 3, 6]);
        assert!(!TelemetryOpts::disabled().profile_due(0), "off means never due");
    }

    #[test]
    fn run_profile_merges_jobs_and_maps_batch_phases() {
        let mut profiled = coop_telemetry::Profiler::enabled();
        profiled.record_ns(phase::SIM_RUN, 1000);
        profiled.record_ns(phase::SIM_ALLOCATE, 600);
        let mut j0 = job(
            0,
            1,
            vec![
                (work::PEERS_VISITED.into(), 100),
                (work::PEERS_PRODUCTIVE.into(), 60),
                ("swarm.rounds".into(), 10),
            ],
        );
        j0.profile = Some(profiled.into_report());
        let j1 = job(1, 1, vec![(work::PEERS_VISITED.into(), 50)]);
        let mut batch = BatchTrace::new(vec![j0, j1]);
        batch.push_phase("simulate", 2);
        batch.push_phase("write_artifacts", 1);
        batch.journal_fsync_ns = 7;
        let profile = batch.run_profile("fig4", Scale::Quick);
        profile.validate().expect("assembled profile validates");
        assert_eq!((profile.jobs, profile.profiled_jobs), (2, 1));
        assert_eq!(profile.phase(phase::SIM_RUN).unwrap().total_ns, 1000);
        assert_eq!(
            profile.phase(phase::BATCH_SIMULATE).unwrap().total_ns,
            2_000_000
        );
        assert_eq!(
            profile.phase(phase::BATCH_JOURNAL_FSYNC).unwrap().total_ns,
            7
        );
        assert_eq!(profile.work_counter(work::PEERS_VISITED), 150);
        assert!(
            !profile.work.iter().any(|(n, _)| n == "swarm.rounds"),
            "only swarm.work.* counters belong in the work section"
        );
        assert_eq!(profile.per_job.len(), 2);
        assert_eq!(profile.per_job[0].visited, 100);
        assert_eq!(profile.per_job[1].productive, 0);
        let names: Vec<&str> = profile.phases.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "phases stay sorted after batch inserts");
    }

    #[test]
    fn manifest_round_trips() {
        let mut batch = BatchTrace::new(vec![job(0, 3, vec![("swarm.rounds".into(), 9)])]);
        batch.push_phase("simulate", 120);
        batch.scenario = Some(("mobile-churn-storm".into(), 0xfeed_beef));
        let m = batch.manifest("fig4", Scale::Quick, 42, 1, 2, "none");
        let parsed = RunManifest::parse(&m.to_json_pretty()).expect("valid manifest");
        assert_eq!(parsed, m);
        assert_eq!(parsed.artifact, "fig4");
        assert_eq!(parsed.scenario, "mobile-churn-storm");
        assert_eq!(parsed.spec_fingerprint, 0xfeed_beef);
        assert_eq!(parsed.counters, vec![("swarm.rounds".to_string(), 9)]);
        assert_eq!(parsed.phases.len(), 1);
        assert_ne!(parsed.config_fingerprint, 0);
    }
}
