//! A small dependency-free SVG line-chart renderer.
//!
//! The Rust scientific-plotting ecosystem is thin, and the paper's results
//! are figures; this module turns the experiment series into
//! self-contained SVG files (`target/experiments/*.svg`) with axes, ticks
//! and a legend — enough to *see* Fig. 4b/4c/5a-style curves without
//! external tooling. CSV artifacts remain the machine-readable source.

use std::fmt::Write as _;

/// One named line on a chart.
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points in data coordinates.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }
}

/// A line chart with axes, tick labels and a legend.
///
/// # Example
///
/// ```
/// use coop_experiments::plot::{LineChart, Series};
/// let chart = LineChart::new("demo", "x", "y")
///     .with_series(Series::new("a", vec![(0.0, 0.0), (1.0, 1.0)]));
/// let svg = chart.to_svg();
/// assert!(svg.starts_with("<svg"));
/// assert!(svg.contains("polyline"));
/// ```
#[derive(Clone, Debug)]
pub struct LineChart {
    title: String,
    x_label: String,
    y_label: String,
    series: Vec<Series>,
    width: u32,
    height: u32,
}

/// A colorblind-friendly six-line palette (one color per algorithm).
const PALETTE: [&str; 6] = [
    "#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee", "#aa3377",
];

const MARGIN_LEFT: f64 = 64.0;
const MARGIN_RIGHT: f64 = 150.0;
const MARGIN_TOP: f64 = 36.0;
const MARGIN_BOTTOM: f64 = 48.0;

impl LineChart {
    /// Creates an empty chart.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        LineChart {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            width: 720,
            height: 420,
        }
    }

    /// Adds a series (builder style).
    pub fn with_series(mut self, series: Series) -> Self {
        self.series.push(series);
        self
    }

    /// Adds a series in place.
    pub fn push_series(&mut self, series: Series) -> &mut Self {
        self.series.push(series);
        self
    }

    /// Number of series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Returns true if the chart has no series.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    fn bounds(&self) -> Option<(f64, f64, f64, f64)> {
        let mut pts = self
            .series
            .iter()
            .flat_map(|s| s.points.iter())
            .filter(|p| p.0.is_finite() && p.1.is_finite())
            .peekable();
        pts.peek()?;
        let mut min_x = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        let mut min_y = f64::INFINITY;
        let mut max_y = f64::NEG_INFINITY;
        for &(x, y) in pts {
            min_x = min_x.min(x);
            max_x = max_x.max(x);
            min_y = min_y.min(y);
            max_y = max_y.max(y);
        }
        // Avoid degenerate ranges.
        if (max_x - min_x).abs() < f64::EPSILON {
            max_x = min_x + 1.0;
        }
        if (max_y - min_y).abs() < f64::EPSILON {
            max_y = min_y + 1.0;
        }
        Some((min_x, max_x, min_y, max_y))
    }

    /// Renders the chart as a standalone SVG document. Charts with no
    /// finite points render an empty frame with the title.
    pub fn to_svg(&self) -> String {
        let w = self.width as f64;
        let h = self.height as f64;
        let plot_w = w - MARGIN_LEFT - MARGIN_RIGHT;
        let plot_h = h - MARGIN_TOP - MARGIN_BOTTOM;
        let mut svg = String::new();
        let _ = write!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="sans-serif">"#
        );
        let _ = write!(
            svg,
            r#"<rect width="{w}" height="{h}" fill="white"/><text x="{tx}" y="22" font-size="14" text-anchor="middle">{title}</text>"#,
            tx = MARGIN_LEFT + plot_w / 2.0,
            title = escape(&self.title),
        );
        // Frame.
        let _ = write!(
            svg,
            r##"<rect x="{x}" y="{y}" width="{pw}" height="{ph}" fill="none" stroke="#888"/>"##,
            x = MARGIN_LEFT,
            y = MARGIN_TOP,
            pw = plot_w,
            ph = plot_h,
        );
        if let Some((min_x, max_x, min_y, max_y)) = self.bounds() {
            let sx = |x: f64| MARGIN_LEFT + (x - min_x) / (max_x - min_x) * plot_w;
            let sy = |y: f64| MARGIN_TOP + plot_h - (y - min_y) / (max_y - min_y) * plot_h;
            // Ticks: 5 per axis.
            for i in 0..=4 {
                let fx = min_x + (max_x - min_x) * i as f64 / 4.0;
                let fy = min_y + (max_y - min_y) * i as f64 / 4.0;
                let _ = write!(
                    svg,
                    r##"<line x1="{x}" y1="{y0}" x2="{x}" y2="{y1}" stroke="#ddd"/><text x="{x}" y="{ty}" font-size="10" text-anchor="middle">{label}</text>"##,
                    x = sx(fx),
                    y0 = MARGIN_TOP,
                    y1 = MARGIN_TOP + plot_h,
                    ty = MARGIN_TOP + plot_h + 16.0,
                    label = tick(fx),
                );
                let _ = write!(
                    svg,
                    r##"<line x1="{x0}" y1="{y}" x2="{x1}" y2="{y}" stroke="#ddd"/><text x="{tx}" y="{y}" font-size="10" text-anchor="end" dominant-baseline="middle">{label}</text>"##,
                    x0 = MARGIN_LEFT,
                    x1 = MARGIN_LEFT + plot_w,
                    y = sy(fy),
                    tx = MARGIN_LEFT - 6.0,
                    label = tick(fy),
                );
            }
            // Series.
            for (i, s) in self.series.iter().enumerate() {
                let color = PALETTE[i % PALETTE.len()];
                let pts: String = s
                    .points
                    .iter()
                    .filter(|p| p.0.is_finite() && p.1.is_finite())
                    .map(|&(x, y)| format!("{:.2},{:.2}", sx(x), sy(y)))
                    .collect::<Vec<_>>()
                    .join(" ");
                if !pts.is_empty() {
                    let _ = write!(
                        svg,
                        r#"<polyline points="{pts}" fill="none" stroke="{color}" stroke-width="1.8"/>"#
                    );
                }
                // Legend entry.
                let ly = MARGIN_TOP + 14.0 * i as f64 + 8.0;
                let _ = write!(
                    svg,
                    r#"<line x1="{x0}" y1="{ly}" x2="{x1}" y2="{ly}" stroke="{color}" stroke-width="2"/><text x="{tx}" y="{ly}" font-size="11" dominant-baseline="middle">{label}</text>"#,
                    x0 = w - MARGIN_RIGHT + 8.0,
                    x1 = w - MARGIN_RIGHT + 28.0,
                    tx = w - MARGIN_RIGHT + 34.0,
                    label = escape(&s.label),
                );
            }
        }
        // Axis labels.
        let _ = write!(
            svg,
            r#"<text x="{x}" y="{y}" font-size="12" text-anchor="middle">{label}</text>"#,
            x = MARGIN_LEFT + plot_w / 2.0,
            y = h - 10.0,
            label = escape(&self.x_label),
        );
        let _ = write!(
            svg,
            r#"<text x="14" y="{y}" font-size="12" text-anchor="middle" transform="rotate(-90 14 {y})">{label}</text>"#,
            y = MARGIN_TOP + plot_h / 2.0,
            label = escape(&self.y_label),
        );
        svg.push_str("</svg>");
        svg
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

fn tick(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{:.0}", v)
    } else if v.abs() >= 10.0 {
        format!("{:.1}", v)
    } else {
        format!("{:.2}", v)
    }
}

impl crate::OutputDir {
    /// Writes a chart as `{name}.svg`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error.
    pub fn svg(&self, name: &str, chart: &LineChart) -> std::io::Result<std::path::PathBuf> {
        let path = self.path().join(format!("{name}.svg"));
        coop_telemetry::write_atomic_str(&path, &chart.to_svg())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> LineChart {
        LineChart::new("t", "x", "y")
            .with_series(Series::new("a", vec![(0.0, 0.0), (10.0, 5.0)]))
            .with_series(Series::new("b", vec![(0.0, 5.0), (10.0, 0.0)]))
    }

    #[test]
    fn svg_is_well_formed_enough() {
        let svg = demo().to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        // Legend labels present.
        assert!(svg.contains(">a</text>"));
        assert!(svg.contains(">b</text>"));
    }

    #[test]
    fn empty_chart_renders_frame_only() {
        let svg = LineChart::new("empty", "x", "y").to_svg();
        assert!(svg.contains("<rect"));
        assert!(!svg.contains("<polyline"));
    }

    #[test]
    fn nan_points_are_dropped() {
        let chart = LineChart::new("t", "x", "y").with_series(Series::new(
            "a",
            vec![(0.0, f64::NAN), (1.0, 1.0), (2.0, 2.0)],
        ));
        let svg = chart.to_svg();
        assert!(svg.contains("<polyline"));
        assert!(!svg.contains("NaN"));
    }

    #[test]
    fn degenerate_ranges_do_not_divide_by_zero() {
        let chart = LineChart::new("t", "x", "y")
            .with_series(Series::new("a", vec![(1.0, 2.0), (1.0, 2.0)]));
        let svg = chart.to_svg();
        assert!(svg.contains("<polyline"));
        assert!(!svg.contains("inf"));
    }

    #[test]
    fn labels_are_escaped() {
        let svg = LineChart::new("a < b & c", "x", "y").to_svg();
        assert!(svg.contains("a &lt; b &amp; c"));
    }

    #[test]
    fn svg_writes_to_disk() {
        let dir = std::env::temp_dir().join(format!("coop-svg-{}", std::process::id()));
        let out = crate::OutputDir::new(dir);
        let path = out.svg("demo", &demo()).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert!(text.contains("</svg>"));
    }
}
