//! The per-run crash-safety ledger (`journal.jsonl`).
//!
//! A [`RunJournal`] lives next to a run's artifacts and records, one JSON
//! object per line, (a) a header identifying the run (artifact, scale,
//! seed, replicates), (b) one record per finished job — keyed by a
//! fingerprint of the full [`SimJob`](crate::SimJob) configuration — with
//! its outcome, attempt count, and (for successes) the complete
//! [`SimResult`], and (c) FNV-1a content hashes of the artifacts written
//! at the end of the run.
//!
//! Unlike whole-file artifacts (which go through
//! [`coop_telemetry::write_atomic`]), the journal is an *append-only*
//! stream: each record is one `write` followed by an fsync, so a crash at
//! any instant leaves a valid prefix plus at most one torn trailing line.
//! [`JournalReplay::load`] tolerates exactly that — unparseable lines are
//! dropped (the affected job simply re-runs) and never poison the rest of
//! the ledger.
//!
//! `--resume <dir>` replays the ledger: completed jobs are satisfied from
//! their recorded [`SimResult`]s (bit-exact — the f64 encoding uses
//! shortest-round-trip formatting, and `u64` values that may exceed the
//! JSON number range, like seeds and fingerprints, travel as 16-digit hex
//! strings), incomplete or failed jobs re-run, and the artifact writers
//! then see exactly the results an uninterrupted run would have produced.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use coop_swarm::{PeerRecord, SimResult, Totals};
use coop_telemetry::json::{self, Json, ObjWriter};

use coop_incentives::metrics::TimeSeries;
use coop_incentives::PeerId;

/// The journal's file name, next to the run's artifacts.
pub const JOURNAL_FILE: &str = "journal.jsonl";

/// Journal format version (bump on incompatible record changes).
pub const JOURNAL_VERSION: u64 = 1;

/// Identifies the run a journal belongs to; `--resume` refuses a
/// directory whose header does not match the current invocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunHeader {
    /// The artifact being produced (e.g. `fig4`, `all`).
    pub artifact: String,
    /// Scale name (`quick` / `default` / `paper`).
    pub scale: String,
    /// The base seed.
    pub seed: u64,
    /// Replicate count.
    pub replicates: u64,
}

/// How a journaled job ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobOutcome {
    /// Completed and its result is recorded.
    Ok,
    /// Panicked on every attempt.
    Panic,
    /// Exceeded the watchdog timeout on every attempt.
    Timeout,
}

impl JobOutcome {
    fn name(self) -> &'static str {
        match self {
            JobOutcome::Ok => "ok",
            JobOutcome::Panic => "panic",
            JobOutcome::Timeout => "timeout",
        }
    }
}

/// One finished job, as recorded in (or replayed from) the ledger.
#[derive(Clone, Debug, PartialEq)]
pub struct JobRecord {
    /// Fingerprint of the job's full configuration
    /// ([`coop_telemetry::fingerprint_debug`] of the `SimJob`).
    pub fingerprint: u64,
    /// Batch slot the job ran in.
    pub slot: u64,
    /// Job label (mechanism name).
    pub label: String,
    /// The job's seed.
    pub seed: u64,
    /// How the job ended.
    pub outcome: JobOutcome,
    /// Attempts consumed (1 = first try).
    pub attempts: u64,
    /// The result (present iff `outcome` is [`JobOutcome::Ok`]).
    pub result: Option<SimResult>,
    /// The failure message (present for non-`Ok` outcomes).
    pub error: Option<String>,
}

/// The append-only crash-safety ledger for one run directory.
#[derive(Debug)]
pub struct RunJournal {
    path: PathBuf,
    file: Mutex<File>,
}

impl RunJournal {
    /// The journal path inside `dir`.
    pub fn path_in(dir: &Path) -> PathBuf {
        dir.join(JOURNAL_FILE)
    }

    /// Starts a fresh journal in `dir` (truncating any previous one) and
    /// writes the run header.
    ///
    /// # Errors
    ///
    /// Returns any I/O error.
    pub fn create(dir: &Path, header: &RunHeader) -> io::Result<RunJournal> {
        std::fs::create_dir_all(dir)?;
        let path = Self::path_in(dir);
        let file = File::create(&path)?;
        let journal = RunJournal {
            path,
            file: Mutex::new(file),
        };
        let mut o = ObjWriter::new();
        o.str("type", "run")
            .uint("version", JOURNAL_VERSION)
            .str("artifact", &header.artifact)
            .str("scale", &header.scale)
            .str("seed", &hex16(header.seed))
            .uint("replicates", header.replicates);
        journal.append_line(&o.finish())?;
        Ok(journal)
    }

    /// Reopens an existing journal in `dir` for appending (the `--resume`
    /// path; pair with [`JournalReplay::load`]).
    ///
    /// # Errors
    ///
    /// Returns any I/O error; [`io::ErrorKind::NotFound`] when the
    /// directory holds no journal.
    pub fn open_append(dir: &Path) -> io::Result<RunJournal> {
        let path = Self::path_in(dir);
        let file = OpenOptions::new().append(true).open(&path)?;
        Ok(RunJournal {
            path,
            file: Mutex::new(file),
        })
    }

    /// The journal file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one finished-job record (fsynced before returning).
    ///
    /// # Errors
    ///
    /// Returns any I/O error.
    pub fn record_job(&self, record: &JobRecord) -> io::Result<()> {
        let mut o = ObjWriter::new();
        o.str("type", "job")
            .str("fp", &hex16(record.fingerprint))
            .uint("slot", record.slot)
            .str("label", &record.label)
            .str("seed", &hex16(record.seed))
            .str("outcome", record.outcome.name())
            .uint("attempts", record.attempts);
        if let Some(result) = &record.result {
            o.raw("result", &result_to_json(result));
        }
        if let Some(error) = &record.error {
            o.str("error", error);
        }
        self.append_line(&o.finish())
    }

    /// Appends one artifact content-hash record (fsynced).
    ///
    /// # Errors
    ///
    /// Returns any I/O error.
    pub fn record_artifact(&self, file_name: &str, hash: u64) -> io::Result<()> {
        let mut o = ObjWriter::new();
        o.str("type", "artifact")
            .str("file", file_name)
            .str("hash", &hex16(hash));
        self.append_line(&o.finish())
    }

    /// Hashes and records every regular file directly inside `dir`
    /// (except the journal itself), in name order. Returns how many were
    /// recorded.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the directory walk or the appends.
    pub fn record_artifact_dir(&self, dir: &Path) -> io::Result<usize> {
        let mut names: Vec<String> = std::fs::read_dir(dir)?
            .filter_map(Result::ok)
            .filter(|e| e.file_type().map(|t| t.is_file()).unwrap_or(false))
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n != JOURNAL_FILE)
            .collect();
        names.sort();
        for name in &names {
            let bytes = std::fs::read(dir.join(name))?;
            self.record_artifact(name, fnv1a(&bytes))?;
        }
        Ok(names.len())
    }

    fn append_line(&self, line: &str) -> io::Result<()> {
        let mut file = self.file.lock().expect("journal lock poisoned");
        file.write_all(line.as_bytes())?;
        file.write_all(b"\n")?;
        file.flush()?;
        file.sync_data()
    }
}

/// The replayed contents of an existing journal.
#[derive(Debug, Default)]
pub struct JournalReplay {
    /// The run header, when a valid one led the file.
    pub header: Option<RunHeader>,
    /// Completed jobs by configuration fingerprint.
    completed: HashMap<u64, SimResult>,
    /// Jobs recorded as failed (they re-run on resume, but their prior
    /// attempt counts carry into reporting).
    failed: HashMap<u64, u64>,
    /// Lines dropped as truncated or corrupted (those jobs re-run).
    pub dropped_lines: usize,
}

impl JournalReplay {
    /// Loads and replays `dir`'s journal. Unparseable or incomplete lines
    /// — the signature of a crash mid-append — are dropped individually;
    /// every record that survives is trustworthy because records are only
    /// appended after their job fully finished.
    ///
    /// # Errors
    ///
    /// Returns any I/O error; [`io::ErrorKind::NotFound`] when `dir` has
    /// no journal.
    pub fn load(dir: &Path) -> io::Result<JournalReplay> {
        let text = std::fs::read_to_string(RunJournal::path_in(dir))?;
        let mut replay = JournalReplay::default();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            let Ok(doc) = json::parse(line) else {
                replay.dropped_lines += 1;
                continue;
            };
            match doc.get("type").and_then(Json::as_str) {
                Some("run") => {
                    let header = (|| {
                        let version = as_u64(doc.get("version")?)?;
                        if version != JOURNAL_VERSION {
                            return None;
                        }
                        Some(RunHeader {
                            artifact: doc.get("artifact")?.as_str()?.to_string(),
                            scale: doc.get("scale")?.as_str()?.to_string(),
                            seed: from_hex16(doc.get("seed")?.as_str()?)?,
                            replicates: as_u64(doc.get("replicates")?)?,
                        })
                    })();
                    match header {
                        Some(h) => replay.header = Some(h),
                        None => replay.dropped_lines += 1,
                    }
                }
                Some("job") => {
                    let parsed = (|| {
                        let fp = from_hex16(doc.get("fp")?.as_str()?)?;
                        let outcome = doc.get("outcome")?.as_str()?;
                        let attempts = as_u64(doc.get("attempts")?)?;
                        Some((fp, outcome.to_string(), attempts))
                    })();
                    match parsed {
                        Some((fp, outcome, _attempts)) if outcome == "ok" => {
                            match doc.get("result").and_then(result_from_json) {
                                Some(result) => {
                                    replay.completed.insert(fp, result);
                                }
                                None => replay.dropped_lines += 1,
                            }
                        }
                        Some((fp, _outcome, attempts)) => {
                            replay.failed.insert(fp, attempts);
                        }
                        None => replay.dropped_lines += 1,
                    }
                }
                Some("artifact") => {}
                _ => replay.dropped_lines += 1,
            }
        }
        Ok(replay)
    }

    /// The recorded result for a completed job, if any.
    pub fn completed(&self, fingerprint: u64) -> Option<&SimResult> {
        self.completed.get(&fingerprint)
    }

    /// Number of completed jobs in the ledger.
    pub fn completed_count(&self) -> usize {
        self.completed.len()
    }

    /// Attempts a previously *failed* job already consumed, if recorded.
    pub fn prior_attempts(&self, fingerprint: u64) -> u64 {
        self.failed.get(&fingerprint).copied().unwrap_or(0)
    }
}

/// The journal-header artifact id for a scenario-pack sweep. Folding the
/// pack fingerprint into the id makes `--resume` refuse a directory whose
/// journal belongs to a different (or since-edited) pack: the header
/// comparison fails before any job is replayed.
pub fn sweep_artifact_id(pack_fingerprint: u64) -> String {
    format!("sweep:{pack_fingerprint:016x}")
}

/// FNV-1a over raw bytes (artifact content hashes).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn hex16(v: u64) -> String {
    format!("{v:016x}")
}

fn from_hex16(s: &str) -> Option<u64> {
    u64::from_str_radix(s, 16).ok()
}

/// Converts a JSON number back to the `u64` it was written from. Safe
/// because every `u64` serialized as a bare number is a byte/round count
/// far below 2^53; unbounded values (seeds, fingerprints) travel as hex
/// strings instead.
fn as_u64(j: &Json) -> Option<u64> {
    let f = j.as_f64()?;
    (f >= 0.0 && f.fract() == 0.0 && f <= 9_007_199_254_740_992.0).then_some(f as u64)
}

fn as_opt_f64(j: &Json) -> Option<Option<f64>> {
    match j {
        Json::Null => Some(None),
        Json::Num(n) => Some(Some(*n)),
        _ => None,
    }
}

fn write_opt_f64(out: &mut String, v: Option<f64>) {
    match v {
        Some(x) => json::write_f64(out, x),
        None => out.push_str("null"),
    }
}

fn series_to_json(out: &mut String, series: &TimeSeries) {
    out.push('[');
    for (i, &(t, v)) in series.points().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        json::write_f64(out, t);
        out.push(',');
        json::write_f64(out, v);
        out.push(']');
    }
    out.push(']');
}

fn series_from_json(j: &Json) -> Option<TimeSeries> {
    let Json::Arr(points) = j else { return None };
    let mut series = TimeSeries::new();
    for p in points {
        let Json::Arr(pair) = p else { return None };
        let [t, v] = pair.as_slice() else { return None };
        series.push(t.as_f64()?, v.as_f64()?);
    }
    Some(series)
}

/// Serializes a [`SimResult`] as one compact JSON object that
/// [`result_from_json`] restores bit-exactly.
pub fn result_to_json(r: &SimResult) -> String {
    let mut out = String::from("{\"rounds_run\":");
    let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{}", r.rounds_run));
    out.push_str(",\"sim_seconds\":");
    json::write_f64(&mut out, r.sim_seconds);
    out.push_str(",\"stalled\":");
    out.push_str(if r.stalled { "true" } else { "false" });
    out.push_str(",\"peers\":[");
    for (i, p) in r.peers.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = std::fmt::Write::write_fmt(&mut out, format_args!("[{},", p.id.index()));
        json::write_f64(&mut out, p.capacity_bps);
        out.push(',');
        out.push_str(if p.compliant { "true" } else { "false" });
        out.push(',');
        json::write_f64(&mut out, p.arrival_s);
        out.push(',');
        write_opt_f64(&mut out, p.bootstrap_s);
        out.push(',');
        write_opt_f64(&mut out, p.completion_s);
        let _ = std::fmt::Write::write_fmt(
            &mut out,
            format_args!(
                ",{},{},{},{}]",
                p.bytes_sent, p.bytes_received_usable, p.bytes_received_raw, p.bytes_inherited
            ),
        );
    }
    out.push_str("],\"totals\":{");
    let t = &r.totals;
    let _ = std::fmt::Write::write_fmt(
        &mut out,
        format_args!(
            "\"uploaded_compliant\":{},\"uploaded_freeriders\":{},\"uploaded_seeder\":{},\
             \"freerider_received_usable\":{},\"freerider_received_raw\":{},\
             \"freerider_received_from_peers\":{},\"aborted_bytes\":{},\
             \"fault_dropped_bytes\":{},\"bytes_by_reason\":[",
            t.uploaded_compliant,
            t.uploaded_freeriders,
            t.uploaded_seeder,
            t.freerider_received_usable,
            t.freerider_received_raw,
            t.freerider_received_from_peers,
            t.aborted_bytes,
            t.fault_dropped_bytes,
        ),
    );
    for (i, b) in t.bytes_by_reason.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{b}"));
    }
    out.push_str("]}");
    for (name, series) in [
        ("fairness_avg", &r.fairness_avg),
        ("fairness_stat", &r.fairness_stat),
        ("bootstrapped_frac", &r.bootstrapped_frac),
        ("completed_frac", &r.completed_frac),
        ("susceptibility", &r.susceptibility),
        ("diversity", &r.diversity),
    ] {
        let _ = std::fmt::Write::write_fmt(&mut out, format_args!(",\"{name}\":"));
        series_to_json(&mut out, series);
    }
    out.push('}');
    out
}

/// Restores a [`SimResult`] from [`result_to_json`]'s output. Returns
/// `None` for any structural mismatch (corrupt ledger lines must never
/// produce a half-filled result).
pub fn result_from_json(doc: &Json) -> Option<SimResult> {
    let mut r = SimResult {
        rounds_run: as_u64(doc.get("rounds_run")?)?,
        sim_seconds: doc.get("sim_seconds")?.as_f64()?,
        stalled: matches!(doc.get("stalled")?, Json::Bool(true)),
        ..SimResult::default()
    };
    let Json::Arr(peers) = doc.get("peers")? else {
        return None;
    };
    for p in peers {
        let Json::Arr(f) = p else { return None };
        let [id, capacity, compliant, arrival, bootstrap, completion, sent, usable, raw, inherited] =
            f.as_slice()
        else {
            return None;
        };
        r.peers.push(PeerRecord {
            id: PeerId::new(u32::try_from(as_u64(id)?).ok()?),
            capacity_bps: capacity.as_f64()?,
            compliant: matches!(compliant, Json::Bool(true)),
            arrival_s: arrival.as_f64()?,
            bootstrap_s: as_opt_f64(bootstrap)?,
            completion_s: as_opt_f64(completion)?,
            bytes_sent: as_u64(sent)?,
            bytes_received_usable: as_u64(usable)?,
            bytes_received_raw: as_u64(raw)?,
            bytes_inherited: as_u64(inherited)?,
        });
    }
    let totals = doc.get("totals")?;
    let mut t = Totals {
        uploaded_compliant: as_u64(totals.get("uploaded_compliant")?)?,
        uploaded_freeriders: as_u64(totals.get("uploaded_freeriders")?)?,
        uploaded_seeder: as_u64(totals.get("uploaded_seeder")?)?,
        freerider_received_usable: as_u64(totals.get("freerider_received_usable")?)?,
        freerider_received_raw: as_u64(totals.get("freerider_received_raw")?)?,
        freerider_received_from_peers: as_u64(totals.get("freerider_received_from_peers")?)?,
        aborted_bytes: as_u64(totals.get("aborted_bytes")?)?,
        fault_dropped_bytes: as_u64(totals.get("fault_dropped_bytes")?)?,
        bytes_by_reason: [0; 9],
    };
    let Json::Arr(by_reason) = totals.get("bytes_by_reason")? else {
        return None;
    };
    if by_reason.len() != t.bytes_by_reason.len() {
        return None;
    }
    for (slot, value) in t.bytes_by_reason.iter_mut().zip(by_reason) {
        *slot = as_u64(value)?;
    }
    r.totals = t;
    r.fairness_avg = series_from_json(doc.get("fairness_avg")?)?;
    r.fairness_stat = series_from_json(doc.get("fairness_stat")?)?;
    r.bootstrapped_frac = series_from_json(doc.get("bootstrapped_frac")?)?;
    r.completed_frac = series_from_json(doc.get("completed_frac")?)?;
    r.susceptibility = series_from_json(doc.get("susceptibility")?)?;
    r.diversity = series_from_json(doc.get("diversity")?)?;
    Some(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_result(seed: u64) -> SimResult {
        let mut r = SimResult {
            rounds_run: 120 + seed,
            sim_seconds: 120.5,
            stalled: seed.is_multiple_of(2),
            ..SimResult::default()
        };
        r.peers.push(PeerRecord {
            id: PeerId::new(3),
            capacity_bps: 65536.375,
            compliant: true,
            arrival_s: 0.25,
            bootstrap_s: Some(1.0 / 3.0),
            completion_s: None,
            bytes_sent: 1 << 33,
            bytes_received_usable: 42,
            bytes_received_raw: 43,
            bytes_inherited: 0,
        });
        r.totals.uploaded_compliant = 9_999_999;
        r.totals.bytes_by_reason[4] = 77;
        r.fairness_avg.push(1.0, 0.1 + 0.2); // deliberately non-exact decimal
        r.susceptibility.push(2.5, f64::MIN_POSITIVE);
        r
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "coop-journal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn header() -> RunHeader {
        RunHeader {
            artifact: "fig4".into(),
            scale: "quick".into(),
            seed: u64::MAX - 3, // exercises the hex path beyond 2^53
            replicates: 3,
        }
    }

    #[test]
    fn result_json_round_trips_bit_exactly() {
        for seed in 0..4 {
            let r = sample_result(seed);
            let doc = json::parse(&result_to_json(&r)).expect("valid json");
            assert_eq!(result_from_json(&doc), Some(r));
        }
    }

    #[test]
    fn journal_round_trips_jobs_and_header() {
        let dir = tmp_dir("roundtrip");
        let journal = RunJournal::create(&dir, &header()).unwrap();
        journal
            .record_job(&JobRecord {
                fingerprint: 0xdead_beef_dead_beef,
                slot: 2,
                label: "T-Chain".into(),
                seed: 42,
                outcome: JobOutcome::Ok,
                attempts: 1,
                result: Some(sample_result(1)),
                error: None,
            })
            .unwrap();
        journal
            .record_job(&JobRecord {
                fingerprint: 7,
                slot: 3,
                label: "BitTorrent".into(),
                seed: 43,
                outcome: JobOutcome::Panic,
                attempts: 3,
                result: None,
                error: Some("injected \"panic\"\nwith newline".into()),
            })
            .unwrap();
        journal.record_artifact("fig4a_quick.csv", 0x1234).unwrap();

        let replay = JournalReplay::load(&dir).unwrap();
        assert_eq!(replay.header, Some(header()));
        assert_eq!(replay.dropped_lines, 0);
        assert_eq!(replay.completed_count(), 1);
        assert_eq!(
            replay.completed(0xdead_beef_dead_beef),
            Some(&sample_result(1))
        );
        assert_eq!(replay.completed(7), None, "failed jobs are not completed");
        assert_eq!(replay.prior_attempts(7), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_trailing_line_reruns_only_that_job() {
        let dir = tmp_dir("truncated");
        let journal = RunJournal::create(&dir, &header()).unwrap();
        for fp in [1u64, 2] {
            journal
                .record_job(&JobRecord {
                    fingerprint: fp,
                    slot: fp,
                    label: "Altruism".into(),
                    seed: fp,
                    outcome: JobOutcome::Ok,
                    attempts: 1,
                    result: Some(sample_result(fp)),
                    error: None,
                })
                .unwrap();
        }
        // Simulate a crash mid-append: chop the file mid-way through the
        // last record.
        let path = RunJournal::path_in(&dir);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 40]).unwrap();

        let replay = JournalReplay::load(&dir).unwrap();
        assert_eq!(replay.dropped_lines, 1, "torn line dropped, not fatal");
        assert_eq!(replay.completed(1), Some(&sample_result(1)));
        assert_eq!(replay.completed(2), None, "torn job re-runs");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_middle_line_drops_only_itself() {
        let dir = tmp_dir("corrupt");
        let journal = RunJournal::create(&dir, &header()).unwrap();
        journal
            .record_job(&JobRecord {
                fingerprint: 5,
                slot: 0,
                label: "Reciprocity".into(),
                seed: 5,
                outcome: JobOutcome::Ok,
                attempts: 1,
                result: Some(sample_result(5)),
                error: None,
            })
            .unwrap();
        let path = RunJournal::path_in(&dir);
        let mut lines: Vec<String> =
            std::fs::read_to_string(&path).unwrap().lines().map(String::from).collect();
        lines.insert(1, "{\"type\":\"job\",\"fp\":garbage".into());
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();

        let replay = JournalReplay::load(&dir).unwrap();
        assert_eq!(replay.dropped_lines, 1);
        assert_eq!(replay.header, Some(header()));
        assert_eq!(replay.completed(5), Some(&sample_result(5)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_append_extends_an_existing_ledger() {
        let dir = tmp_dir("append");
        {
            let journal = RunJournal::create(&dir, &header()).unwrap();
            journal
                .record_job(&JobRecord {
                    fingerprint: 10,
                    slot: 0,
                    label: "FairTorrent".into(),
                    seed: 1,
                    outcome: JobOutcome::Timeout,
                    attempts: 2,
                    result: None,
                    error: Some("exceeded 30s".into()),
                })
                .unwrap();
        }
        let journal = RunJournal::open_append(&dir).unwrap();
        journal
            .record_job(&JobRecord {
                fingerprint: 10,
                slot: 0,
                label: "FairTorrent".into(),
                seed: 1,
                outcome: JobOutcome::Ok,
                attempts: 1,
                result: Some(sample_result(9)),
                error: None,
            })
            .unwrap();
        let replay = JournalReplay::load(&dir).unwrap();
        // The later (successful) record wins.
        assert_eq!(replay.completed(10), Some(&sample_result(9)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_artifact_ids_embed_the_pack_fingerprint() {
        assert_eq!(sweep_artifact_id(0xdead_beef), "sweep:00000000deadbeef");
        assert_ne!(sweep_artifact_id(1), sweep_artifact_id(2));
    }

    #[test]
    fn missing_journal_is_not_found() {
        let dir = tmp_dir("missing");
        std::fs::create_dir_all(&dir).unwrap();
        let err = JournalReplay::load(&dir).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
        let err = RunJournal::open_append(&dir).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn artifact_dir_hashes_are_recorded_in_name_order() {
        let dir = tmp_dir("artifacts");
        let journal = RunJournal::create(&dir, &header()).unwrap();
        std::fs::write(dir.join("b.csv"), b"x,y\n1,2\n").unwrap();
        std::fs::write(dir.join("a.json"), b"{}").unwrap();
        let n = journal.record_artifact_dir(&dir).unwrap();
        assert_eq!(n, 2, "journal itself is excluded");
        let text = std::fs::read_to_string(journal.path()).unwrap();
        let a = text.find("a.json").unwrap();
        let b = text.find("b.csv").unwrap();
        assert!(a < b, "name order");
        assert!(text.contains(&hex16(fnv1a(b"{}"))));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
