//! Parallel batch execution of independent simulation jobs.
//!
//! Every experiment in this crate decomposes into a grid of *independent*
//! simulation runs — mechanism × seed × attack scenario — whose results
//! are then aggregated and written sequentially. This module provides the
//! execution layer for that decomposition:
//!
//! - [`SimJob`] is one typed cell of the grid (built en masse with
//!   [`SimJob::grid`]).
//! - [`Executor`] fans a slice of jobs out across a bounded pool of
//!   `std::thread::scope` workers and collects results **in slot order**,
//!   so output is byte-identical regardless of worker count.
//!
//! Determinism comes for free from the simulation itself: each job's
//! randomness derives entirely from its own seed through `coop-des`'s
//! [`SeedTree`](coop_des::rng::SeedTree) streams, so a job behaves
//! identically whether it runs first on one thread or last on sixteen.
//! The executor preserves that property end to end by never letting
//! scheduling order leak into result order.
//!
//! # Crash safety
//!
//! The executor also carries the run's *robustness policy*:
//!
//! - **Panic isolation** — every job attempt runs under
//!   [`std::panic::catch_unwind`]; a panicking job becomes a
//!   [`JobFailure`] instead of tearing down the batch, and the remaining
//!   jobs still complete ([`Executor::run_sims_robust`]).
//! - **Watchdog timeouts** — with [`Executor::with_job_timeout`] each
//!   attempt runs on its own watchdog-supervised thread; an attempt that
//!   outlives the budget is abandoned (the thread detaches) and counts as
//!   a [`FailureKind::Timeout`].
//! - **Deterministic retries** — failed attempts are retried up to
//!   [`Executor::with_retries`] times with an exponential backoff derived
//!   purely from the job's configuration fingerprint ([`backoff_ms`]), so
//!   retry timing never injects nondeterminism into results.
//! - **Journaling & resume** — with [`Executor::with_journal`] every
//!   finished job is appended (and fsynced) to the run's
//!   [`RunJournal`]; with [`Executor::with_replay`] jobs already
//!   completed in a previous interrupted run are satisfied from the
//!   ledger without re-simulating, which is what makes `--resume`
//!   byte-identical to an uninterrupted run.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use coop_attacks::AttackPlan;
use coop_faults::FaultPlan;
use coop_incentives::MechanismKind;
use coop_swarm::SimResult;
use coop_telemetry::{
    fingerprint_debug, ProfileReport, Recorder, Stopwatch, TelemetryConfig, TelemetryReport,
};
use serde::Serialize;

use crate::journal::{JobOutcome, JobRecord, JournalReplay, RunJournal};
use crate::runners::{run_sim, run_sim_profiled};
use crate::scenario::Workload;
use crate::telemetry::{BatchTrace, JobTrace, TelemetryOpts};
use crate::{OutputDir, Scale};

/// One independent simulation run: a cell of the mechanism × seed ×
/// attack-scenario grid.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimJob {
    /// The incentive mechanism under test.
    pub kind: MechanismKind,
    /// Swarm scale (population, file size, horizon).
    pub scale: Scale,
    /// Seed for every random draw in the run.
    pub seed: u64,
    /// Attack scenario, or `None` for an all-compliant swarm.
    pub plan: Option<AttackPlan>,
    /// Fault/churn scenario, or `None` for a fault-free run.
    pub faults: Option<FaultPlan>,
    /// Scenario workload overrides (population size, bandwidth-class
    /// mix) plus the owning spec's fingerprint, or `None` for the
    /// scale's defaults. Part of the `Debug` rendering, so a changed
    /// spec changes [`SimJob::fingerprint`] and invalidates journal
    /// replay for exactly the jobs it describes.
    pub workload: Option<Workload>,
}

impl SimJob {
    /// Expands a run grid into jobs: for each seed (outer), all eight
    /// mechanisms in [`MechanismKind::EXTENDED`] order (inner) — the
    /// paper's six plus the epoch-settled and consensus-reputation
    /// variants — with the scenario chosen per mechanism by `plan_for`.
    ///
    /// The seed-major layout means `jobs[s * 8 .. (s + 1) * 8]` is exactly
    /// the figure row set for `seeds[s]`.
    pub fn grid(
        scale: Scale,
        seeds: &[u64],
        plan_for: impl Fn(MechanismKind) -> Option<AttackPlan>,
    ) -> Vec<SimJob> {
        SimJob::grid_of(scale, seeds, &MechanismKind::EXTENDED, plan_for)
    }

    /// [`SimJob::grid`] over an explicit mechanism list (scenario packs
    /// restrict figures to their declared mechanisms; the figure runners
    /// default to [`MechanismKind::EXTENDED`]).
    pub fn grid_of(
        scale: Scale,
        seeds: &[u64],
        kinds: &[MechanismKind],
        plan_for: impl Fn(MechanismKind) -> Option<AttackPlan>,
    ) -> Vec<SimJob> {
        seeds
            .iter()
            .flat_map(|&seed| {
                kinds.iter().map(move |&kind| (seed, kind))
            })
            .map(|(seed, kind)| SimJob {
                kind,
                scale,
                seed,
                plan: plan_for(kind),
                faults: None,
                workload: None,
            })
            .collect()
    }

    /// The effective population size: the workload override when the job
    /// came from a scenario, the scale default otherwise.
    pub fn peers(&self) -> usize {
        self.workload
            .and_then(|w| w.peers)
            .unwrap_or_else(|| self.scale.peers())
    }

    /// Runs this job to completion.
    pub fn run(&self) -> SimResult {
        run_sim(
            self.kind,
            self.scale,
            self.plan.as_ref(),
            self.faults.as_ref(),
            self.workload.as_ref(),
            self.seed,
        )
    }

    /// Runs this job with an enabled recorder built from `config`,
    /// returning both the result and the gathered telemetry. The result
    /// is identical to [`SimJob::run`] — the recorder only observes.
    pub fn run_traced(&self, config: &TelemetryConfig) -> (SimResult, TelemetryReport) {
        self.run_with(Some(config), None)
    }

    /// Runs this job with optional telemetry and an optional mid-run
    /// checkpoint cadence (`--checkpoint-every`). Checkpointing is
    /// observational state capture: the [`SimResult`] is identical for any
    /// cadence, including none (pinned by the swarm crate's
    /// checkpoint-equivalence battery).
    pub fn run_with(
        &self,
        config: Option<&TelemetryConfig>,
        checkpoint_every: Option<u64>,
    ) -> (SimResult, TelemetryReport) {
        let (result, report, _) = self.run_profiled(config, checkpoint_every, false, 1);
        (result, report)
    }

    /// [`SimJob::run_with`] with an optionally live wall-clock profiler
    /// (`--profile`) and an intra-sim shard count (`--shards`). Like the
    /// recorder, both only observe the result: the [`SimResult`] is
    /// byte-identical whether `profiled` is set or not and for any
    /// `shards` value.
    pub fn run_profiled(
        &self,
        config: Option<&TelemetryConfig>,
        checkpoint_every: Option<u64>,
        profiled: bool,
        shards: usize,
    ) -> (SimResult, TelemetryReport, ProfileReport) {
        let recorder = match config {
            Some(config) => Recorder::enabled(config.clone()),
            None => Recorder::disabled(),
        };
        run_sim_profiled(
            self.kind,
            self.scale,
            self.plan.as_ref(),
            self.faults.as_ref(),
            self.workload.as_ref(),
            self.seed,
            recorder,
            checkpoint_every,
            profiled,
            shards,
        )
    }

    /// The fingerprint of this job's full configuration — the key the
    /// crash-safety journal files it under.
    pub fn fingerprint(&self) -> u64 {
        fingerprint_debug(self)
    }

    /// The job's display label: its mechanism's canonical name.
    pub fn label(&self) -> &'static str {
        self.kind.name()
    }
}

/// The environment variable the CLI reads to inject deterministic job
/// panics (a test/CI hook): `LABEL:SEED:COUNT`, e.g.
/// `BitTorrent:42:1` to make the BitTorrent/seed-42 job panic on its
/// first attempt only, or `BitTorrent:*:*` to make every BitTorrent job
/// panic on every attempt.
pub const PANIC_INJECT_ENV: &str = "COOP_PANIC_INJECT";

/// Deterministic panic injection for exercising the failure path.
///
/// Matching jobs panic inside the normal isolation machinery (under
/// `catch_unwind`, on the watchdog thread when a timeout is set), so
/// tests and the CI panic-smoke job drive exactly the code paths a real
/// defect would.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PanicInject {
    /// Job label the injection targets (mechanism name, exact match).
    pub label: String,
    /// Seed the injection targets, or `None` (`*`) for every seed.
    pub seed: Option<u64>,
    /// Fail the first N attempts, or `None` (`*`) to fail every attempt.
    pub fail_attempts: Option<u64>,
}

impl PanicInject {
    /// Parses the `LABEL:SEED:COUNT` form (see [`PANIC_INJECT_ENV`]).
    ///
    /// # Errors
    ///
    /// Returns a message describing the malformed field.
    pub fn parse(s: &str) -> Result<PanicInject, String> {
        let parts: Vec<&str> = s.split(':').collect();
        let [label, seed, count] = parts.as_slice() else {
            return Err(format!(
                "expected LABEL:SEED:COUNT (seed/count may be '*'), got '{s}'"
            ));
        };
        if label.is_empty() {
            return Err("label must not be empty".to_string());
        }
        let wildcard_or = |field: &str, name: &str| -> Result<Option<u64>, String> {
            if field == "*" {
                Ok(None)
            } else {
                field
                    .parse::<u64>()
                    .map(Some)
                    .map_err(|_| format!("{name} must be an integer or '*', got '{field}'"))
            }
        };
        Ok(PanicInject {
            label: (*label).to_string(),
            seed: wildcard_or(seed, "seed")?,
            fail_attempts: wildcard_or(count, "count")?,
        })
    }

    /// Reads [`PANIC_INJECT_ENV`], returning `Ok(None)` when unset.
    ///
    /// # Errors
    ///
    /// Returns the parse error for a malformed value.
    pub fn from_env() -> Result<Option<PanicInject>, String> {
        match std::env::var(PANIC_INJECT_ENV) {
            Ok(value) => Self::parse(&value)
                .map(Some)
                .map_err(|e| format!("{PANIC_INJECT_ENV}: {e}")),
            Err(_) => Ok(None),
        }
    }

    /// Whether the job identified by `(label, seed)` should panic on its
    /// `attempt`-th try (0-based).
    pub fn should_fail(&self, label: &str, seed: u64, attempt: u64) -> bool {
        self.label == label
            && self.seed.is_none_or(|s| s == seed)
            && self.fail_attempts.is_none_or(|n| attempt < n)
    }
}

/// How a job ultimately failed (after exhausting its retries).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum FailureKind {
    /// The job panicked.
    Panic,
    /// The job exceeded the watchdog timeout.
    Timeout,
}

impl FailureKind {
    /// Lower-case name (journal/report vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            FailureKind::Panic => "panic",
            FailureKind::Timeout => "timeout",
        }
    }

    fn outcome(self) -> JobOutcome {
        match self {
            FailureKind::Panic => JobOutcome::Panic,
            FailureKind::Timeout => JobOutcome::Timeout,
        }
    }
}

/// One job that failed every attempt. Identifies the grid cell precisely
/// — mechanism, population size, and seed — so `failures.json` tells the
/// operator exactly what to re-run or investigate.
#[derive(Clone, Debug, Serialize)]
pub struct JobFailure {
    /// Batch slot the job occupied.
    pub slot: usize,
    /// Mechanism name (the job's label).
    pub mechanism: String,
    /// Swarm population (N) of the failed cell.
    pub peers: usize,
    /// The job's seed.
    pub seed: u64,
    /// Attempts consumed (1 = failed on the only try).
    pub attempts: u64,
    /// Panic or timeout.
    pub kind: FailureKind,
    /// The panic payload or timeout description.
    pub message: String,
    /// The deterministic backoffs slept between attempts (empty when
    /// `retries` was 0).
    pub backoff_ms: Vec<u64>,
}

/// A batch that finished with at least one failed job. The batch itself
/// ran to completion — every healthy job's result was computed (and
/// journaled) — but the artifact set for `figure` could not be fully
/// produced.
#[derive(Clone, Debug, Serialize)]
pub struct BatchError {
    /// The figure/artifact whose batch failed.
    pub figure: String,
    /// Total jobs in the batch.
    pub total: usize,
    /// The failed jobs, in slot order.
    pub failures: Vec<JobFailure>,
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let first = &self.failures[0];
        write!(
            f,
            "{}: {} of {} jobs failed; first: {} (N={}, seed {}) {} after {} attempt(s): {}",
            self.figure,
            self.failures.len(),
            self.total,
            first.mechanism,
            first.peers,
            first.seed,
            first.kind.name(),
            first.attempts,
            first.message
        )
    }
}

impl std::error::Error for BatchError {}

/// The `failures.json` file name, next to the run's artifacts.
pub const FAILURES_FILE: &str = "failures.json";

/// Writes the structured `failures.json` report for every failed batch of
/// a run (atomically, like all artifacts).
///
/// # Errors
///
/// Returns any I/O error.
pub fn write_failures_json(
    out: &OutputDir,
    errors: &[BatchError],
) -> std::io::Result<std::path::PathBuf> {
    // The vendored serde_derive shim does not support generic types, so
    // the report owns its data.
    #[derive(Serialize)]
    struct FailureReport {
        failed_jobs: usize,
        figures: Vec<String>,
        batches: Vec<BatchError>,
    }
    out.json(
        "failures",
        &FailureReport {
            failed_jobs: errors.iter().map(|e| e.failures.len()).sum(),
            figures: errors.iter().map(|e| e.figure.clone()).collect(),
            batches: errors.to_vec(),
        },
    )
}

/// The deterministic retry backoff (milliseconds) for a job's
/// `attempt`-th failure (0-based): exponential in the attempt with
/// fingerprint-derived jitter, capped at 2 s. Pure function of its inputs
/// — two runs of the same grid back off identically, so retries never
/// make results (or journals) diverge.
pub fn backoff_ms(fingerprint: u64, attempt: u64) -> u64 {
    let base = 25u64 << attempt.min(6);
    let mut h = fingerprint ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    (base + h % base).min(2_000)
}

/// Everything a robust batch produced: slot-aligned results (`None`
/// where the job failed every attempt), the failures in slot order, and
/// the batch trace when telemetry was on.
#[derive(Debug)]
pub struct BatchRun {
    /// `results[i]` is job `i`'s result, or `None` if it failed.
    pub results: Vec<Option<SimResult>>,
    /// Failed jobs in slot order (empty on a clean batch).
    pub failures: Vec<JobFailure>,
    /// The slot-ordered batch trace (telemetry runs only). Failed jobs
    /// contribute no span; journal-replayed jobs contribute a zero-cost
    /// span with an empty report.
    pub trace: Option<BatchTrace>,
}

impl BatchRun {
    /// Converts to a [`BatchError`] for `figure` when any job failed.
    ///
    /// # Errors
    ///
    /// Returns the error when `failures` is non-empty.
    pub fn into_complete(self, figure: &str) -> Result<(Vec<SimResult>, Option<BatchTrace>), BatchError> {
        if !self.failures.is_empty() {
            return Err(BatchError {
                figure: figure.to_string(),
                total: self.results.len(),
                failures: self.failures,
            });
        }
        let results = self
            .results
            .into_iter()
            .map(|r| r.expect("no failures, so every slot holds a result"))
            .collect();
        Ok((results, self.trace))
    }
}

/// How one attempt of one job ended (internal).
enum AttemptOutcome {
    Done(Box<(SimResult, TelemetryReport, ProfileReport)>),
    Failed(FailureKind, String),
}

/// A bounded pool of scoped worker threads for running independent jobs,
/// plus the batch's robustness policy (retries, watchdog timeout, panic
/// injection, journal/replay wiring — see the module docs).
///
/// Workers claim jobs from a shared atomic cursor (no per-job locking) and
/// stamp each result with its slot index; the caller receives results in
/// input order. With `jobs = 1` the executor degenerates to a plain
/// sequential loop on the calling thread — useful as the determinism
/// baseline.
#[derive(Clone, Debug)]
pub struct Executor {
    jobs: usize,
    shards: usize,
    retries: u64,
    job_timeout: Option<Duration>,
    checkpoint_every: Option<u64>,
    panic_inject: Option<PanicInject>,
    journal: Option<Arc<RunJournal>>,
    replay: Option<Arc<JournalReplay>>,
    /// Journal append + fsync nanoseconds accumulated across the current
    /// batch (wall clock — surfaced only in `profile.json`, reset per
    /// batch). Shared so worker threads can add to it through `&self`.
    journal_fsync_ns: Arc<std::sync::atomic::AtomicU64>,
}

impl Executor {
    /// An executor with exactly `jobs` workers (clamped to at least 1)
    /// and the default (fail-fast, journal-less) robustness policy.
    pub fn new(jobs: usize) -> Self {
        Executor {
            jobs: jobs.max(1),
            shards: 1,
            retries: 0,
            job_timeout: None,
            checkpoint_every: None,
            panic_inject: None,
            journal: None,
            replay: None,
            journal_fsync_ns: Arc::new(std::sync::atomic::AtomicU64::new(0)),
        }
    }

    /// A single-threaded executor (the sequential baseline).
    pub fn sequential() -> Self {
        Executor::new(1)
    }

    /// Shards each simulation's round across `k` scoped worker threads
    /// *inside* the sim (`--shards`; clamped to at least 1). Orthogonal to
    /// `jobs`, which fans out across independent sims. Observational for
    /// results: artifacts are byte-identical for any shard count (pinned
    /// by the shard byte-identity battery).
    #[must_use]
    pub fn with_shards(mut self, k: usize) -> Self {
        self.shards = k.max(1);
        self
    }

    /// Retries each failed job up to `retries` extra times (`--retries`).
    #[must_use]
    pub fn with_retries(mut self, retries: u64) -> Self {
        self.retries = retries;
        self
    }

    /// Aborts any single job attempt that outlives `timeout`
    /// (`--job-timeout`). Attempts then run on watchdog-supervised
    /// threads; a timed-out attempt's thread is abandoned.
    #[must_use]
    pub fn with_job_timeout(mut self, timeout: Duration) -> Self {
        self.job_timeout = Some(timeout);
        self
    }

    /// Captures a mid-run simulation checkpoint every `k` rounds in each
    /// job (`--checkpoint-every`); `0` disables. Observational: results
    /// are identical for any cadence.
    #[must_use]
    pub fn with_checkpoint_every(mut self, k: u64) -> Self {
        self.checkpoint_every = (k > 0).then_some(k);
        self
    }

    /// Installs deterministic panic injection (the
    /// [`PANIC_INJECT_ENV`] test hook).
    #[must_use]
    pub fn with_panic_inject(mut self, inject: Option<PanicInject>) -> Self {
        self.panic_inject = inject;
        self
    }

    /// Appends every finished job to `journal` (fsynced per record).
    #[must_use]
    pub fn with_journal(mut self, journal: Arc<RunJournal>) -> Self {
        self.journal = Some(journal);
        self
    }

    /// Satisfies jobs already completed in `replay` from the ledger
    /// instead of re-running them (the `--resume` path).
    #[must_use]
    pub fn with_replay(mut self, replay: Arc<JournalReplay>) -> Self {
        self.replay = Some(replay);
        self
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The configured intra-sim shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The configured retry budget.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// The configured per-attempt watchdog timeout.
    pub fn job_timeout(&self) -> Option<Duration> {
        self.job_timeout
    }

    /// The configured checkpoint cadence.
    pub fn checkpoint_every(&self) -> Option<u64> {
        self.checkpoint_every
    }

    /// Maps `run` over `items` using up to `self.jobs()` worker threads.
    ///
    /// `run` receives `(slot_index, &item)`; the returned vector is in
    /// slot order — position `i` holds the result for `items[i]` no
    /// matter which worker computed it or when it finished.
    pub fn map<I, T, F>(&self, items: &[I], run: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
    {
        let workers = self.jobs.min(items.len());
        if workers <= 1 {
            return items.iter().enumerate().map(|(i, it)| run(i, it)).collect();
        }
        let cursor = std::sync::atomic::AtomicUsize::new(0);
        let mut tagged: Vec<(usize, T)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut mine: Vec<(usize, T)> = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            let Some(item) = items.get(i) else {
                                break;
                            };
                            mine.push((i, run(i, item)));
                        }
                        mine
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("batch worker panicked"))
                .collect()
        });
        tagged.sort_by_key(|&(i, _)| i);
        debug_assert_eq!(tagged.len(), items.len());
        tagged.into_iter().map(|(_, t)| t).collect()
    }

    /// [`Executor::map`] with per-item panic isolation and the executor's
    /// retry/backoff policy: each item's closure runs under
    /// `catch_unwind`, failed items retry with the deterministic backoff
    /// keyed by their slot, and an item that fails every attempt yields
    /// `Err(panic message)` instead of tearing down the batch.
    ///
    /// This is the isolation layer for the closure-based runners
    /// (ablations, fig4-scale) whose work items are not [`SimJob`]s; it
    /// has no watchdog and no journal.
    pub fn try_map<I, T, F>(&self, items: &[I], run: F) -> Vec<Result<T, String>>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
    {
        self.map(items, |i, item| {
            let mut attempt = 0u64;
            loop {
                match catch_unwind(AssertUnwindSafe(|| run(i, item))) {
                    Ok(value) => return Ok(value),
                    Err(payload) => {
                        if attempt >= self.retries {
                            return Err(panic_message(payload.as_ref()));
                        }
                        std::thread::sleep(Duration::from_millis(backoff_ms(i as u64, attempt)));
                        attempt += 1;
                    }
                }
            }
        })
    }

    /// Runs a batch of simulation jobs, returning results in job order.
    pub fn run_sims(&self, jobs: &[SimJob]) -> Vec<SimResult> {
        self.map(jobs, |_, job| job.run())
    }

    /// Runs a batch with per-job telemetry: results in job order plus a
    /// slot-ordered [`BatchTrace`] (job spans with wall time, slow-job
    /// flags, merged counters).
    ///
    /// The fail-fast wrapper around [`Executor::run_sims_robust`]: a job
    /// that fails every attempt panics here (the historical contract).
    /// Results never depend on whether tracing is on, and the trace's
    /// slot ordering never depends on the worker count.
    ///
    /// # Panics
    ///
    /// Panics when any job fails every attempt; use
    /// [`Executor::run_sims_robust`] to handle failures.
    pub fn run_sims_traced(
        &self,
        jobs: &[SimJob],
        opts: &TelemetryOpts,
    ) -> (Vec<SimResult>, Option<BatchTrace>) {
        let run = self.run_sims_robust(jobs, opts);
        if let Some(first) = run.failures.first() {
            panic!(
                "{} of {} jobs failed; first: {} (seed {}) {}: {}",
                run.failures.len(),
                jobs.len(),
                first.mechanism,
                first.seed,
                first.kind.name(),
                first.message
            );
        }
        let results = run
            .results
            .into_iter()
            .map(|r| r.expect("no failures, so every slot holds a result"))
            .collect();
        (results, run.trace)
    }

    /// Runs a batch under the executor's full robustness policy: journal
    /// replay, panic isolation, watchdog timeouts, deterministic retries,
    /// and per-job ledger appends. The batch always runs to the end —
    /// failed jobs surface as `None` results plus [`JobFailure`] entries
    /// rather than aborting the run.
    pub fn run_sims_robust(&self, jobs: &[SimJob], opts: &TelemetryOpts) -> BatchRun {
        use std::sync::atomic::Ordering;
        let config = opts.is_enabled().then(|| opts.recorder_config());
        self.journal_fsync_ns.store(0, Ordering::Relaxed);
        let runs = self.map(jobs, |slot, job| {
            self.run_one(slot, job, config.as_ref(), opts.profile_due(slot))
        });
        let mut results = Vec::with_capacity(jobs.len());
        let mut failures = Vec::new();
        let mut traces = Vec::new();
        for run in runs {
            match run {
                Ok((result, trace)) => {
                    results.push(Some(result));
                    if let Some(trace) = trace {
                        traces.push(trace);
                    }
                }
                Err(failure) => {
                    results.push(None);
                    failures.push(failure);
                }
            }
        }
        let trace = config.is_some().then(|| {
            let mut trace = BatchTrace::new(traces);
            trace.journal_fsync_ns = self.journal_fsync_ns.load(Ordering::Relaxed);
            trace
        });
        BatchRun {
            results,
            failures,
            trace,
        }
    }

    /// Runs one job under the robustness policy (worker-thread context).
    fn run_one(
        &self,
        slot: usize,
        job: &SimJob,
        config: Option<&TelemetryConfig>,
        profiled: bool,
    ) -> Result<(SimResult, Option<JobTrace>), JobFailure> {
        let fingerprint = job.fingerprint();
        // Resume: a job the ledger already holds is never re-simulated.
        if let Some(result) = self
            .replay
            .as_deref()
            .and_then(|replay| replay.completed(fingerprint))
        {
            let trace = config.map(|_| JobTrace {
                slot,
                label: job.label().to_string(),
                seed: job.seed,
                wall_ms: 0,
                slow: false,
                retries: 0,
                peers: job.peers() as u64,
                report: TelemetryReport::default(),
                profile: None,
            });
            return Ok((result.clone(), trace));
        }
        let mut backoffs = Vec::new();
        let mut last_failure = None;
        for attempt in 0..=self.retries {
            let attempt_clock = Stopwatch::start();
            match self.attempt(job, config, attempt, profiled) {
                AttemptOutcome::Done(triple) => {
                    let (result, report, profile) = *triple;
                    let wall_ms = attempt_clock.elapsed_ms();
                    self.journal_record(&JobRecord {
                        fingerprint,
                        slot: slot as u64,
                        label: job.label().to_string(),
                        seed: job.seed,
                        outcome: JobOutcome::Ok,
                        attempts: attempt + 1,
                        result: Some(result.clone()),
                        error: None,
                    });
                    let trace = config.map(|_| JobTrace {
                        slot,
                        label: job.label().to_string(),
                        seed: job.seed,
                        wall_ms,
                        slow: false,
                        retries: attempt,
                        peers: job.peers() as u64,
                        report,
                        profile: profiled.then_some(profile),
                    });
                    return Ok((result, trace));
                }
                AttemptOutcome::Failed(kind, message) => {
                    last_failure = Some((kind, message));
                    if attempt < self.retries {
                        let ms = backoff_ms(fingerprint, attempt);
                        backoffs.push(ms);
                        std::thread::sleep(Duration::from_millis(ms));
                    }
                }
            }
        }
        let (kind, message) = last_failure.expect("loop ran at least once");
        let attempts = self.retries + 1;
        self.journal_record(&JobRecord {
            fingerprint,
            slot: slot as u64,
            label: job.label().to_string(),
            seed: job.seed,
            outcome: kind.outcome(),
            attempts,
            result: None,
            error: Some(message.clone()),
        });
        Err(JobFailure {
            slot,
            mechanism: job.label().to_string(),
            peers: job.peers(),
            seed: job.seed,
            attempts,
            kind,
            message,
            backoff_ms: backoffs,
        })
    }

    /// One isolated attempt: inline under `catch_unwind` without a
    /// watchdog, on a supervised thread with one. A timed-out attempt's
    /// thread is abandoned (it cannot be killed safely) — it finishes in
    /// the background and its result is discarded.
    fn attempt(
        &self,
        job: &SimJob,
        config: Option<&TelemetryConfig>,
        attempt: u64,
        profiled: bool,
    ) -> AttemptOutcome {
        let inject = self
            .panic_inject
            .as_ref()
            .is_some_and(|p| p.should_fail(job.label(), job.seed, attempt));
        let checkpoint_every = self.checkpoint_every;
        let shards = self.shards;
        let job = *job;
        let config = config.cloned();
        let body = move || {
            assert!(!inject, "injected panic ({PANIC_INJECT_ENV})");
            job.run_profiled(config.as_ref(), checkpoint_every, profiled, shards)
        };
        match self.job_timeout {
            None => match catch_unwind(AssertUnwindSafe(body)) {
                Ok(triple) => AttemptOutcome::Done(Box::new(triple)),
                Err(payload) => {
                    AttemptOutcome::Failed(FailureKind::Panic, panic_message(payload.as_ref()))
                }
            },
            Some(timeout) => {
                let (tx, rx) = mpsc::channel();
                std::thread::spawn(move || {
                    let outcome = catch_unwind(AssertUnwindSafe(body));
                    let _ = tx.send(outcome);
                });
                match rx.recv_timeout(timeout) {
                    Ok(Ok(triple)) => AttemptOutcome::Done(Box::new(triple)),
                    Ok(Err(payload)) => {
                        AttemptOutcome::Failed(FailureKind::Panic, panic_message(payload.as_ref()))
                    }
                    Err(_) => AttemptOutcome::Failed(
                        FailureKind::Timeout,
                        format!(
                            "attempt exceeded the {:.3}s watchdog; worker thread abandoned",
                            timeout.as_secs_f64()
                        ),
                    ),
                }
            }
        }
    }

    /// Best-effort ledger append; an I/O failure is reported but never
    /// fails the job (the affected record simply re-runs on resume).
    fn journal_record(&self, record: &JobRecord) {
        if let Some(journal) = &self.journal {
            let fsync_clock = Stopwatch::start();
            if let Err(e) = journal.record_job(record) {
                eprintln!(
                    "warning: journal append for {} (seed {}) failed: {e}",
                    record.label, record.seed
                );
            }
            self.journal_fsync_ns
                .fetch_add(fsync_clock.elapsed_ns(), std::sync::atomic::Ordering::Relaxed);
        }
    }
}

/// Renders a `catch_unwind` payload as text.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

impl Default for Executor {
    /// An executor sized to the machine's available parallelism.
    fn default() -> Self {
        Executor::new(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_slot_order_regardless_of_workers() {
        let items: Vec<u64> = (0..37).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x * x).collect();
        for workers in [1, 2, 3, 8, 64] {
            let got = Executor::new(workers).map(&items, |_, &x| x * x);
            assert_eq!(got, expected, "workers = {workers}");
        }
    }

    #[test]
    fn map_handles_empty_and_oversized_pools() {
        let empty: Vec<u32> = Vec::new();
        assert!(Executor::new(8).map(&empty, |_, &x| x).is_empty());
        let one = [7u32];
        assert_eq!(Executor::new(999).map(&one, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn grid_is_seed_major_in_mechanism_order() {
        let jobs = SimJob::grid(Scale::Quick, &[1, 2], |kind| {
            (kind == MechanismKind::Altruism).then(|| AttackPlan::simple(0.2))
        });
        assert_eq!(jobs.len(), 2 * MechanismKind::EXTENDED.len());
        for (i, job) in jobs.iter().enumerate() {
            assert_eq!(job.seed, [1u64, 2][i / MechanismKind::EXTENDED.len()]);
            assert_eq!(
                job.kind,
                MechanismKind::EXTENDED[i % MechanismKind::EXTENDED.len()]
            );
            assert_eq!(job.plan.is_some(), job.kind == MechanismKind::Altruism);
        }
    }

    #[test]
    fn grid_of_restricts_to_the_given_kinds() {
        let kinds = [MechanismKind::Altruism, MechanismKind::FairTorrent];
        let jobs = SimJob::grid_of(Scale::Quick, &[9], &kinds, |_| None);
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].kind, MechanismKind::Altruism);
        assert_eq!(jobs[1].kind, MechanismKind::FairTorrent);
    }

    #[test]
    fn try_map_isolates_panics_and_retries_deterministically() {
        let ex = Executor::new(2);
        let got = ex.try_map(&[1u32, 2, 3], |_, &x| {
            assert!(x != 2, "boom on {x}");
            x * 10
        });
        assert_eq!(got[0], Ok(10));
        assert_eq!(got[2], Ok(30));
        let err = got[1].as_ref().unwrap_err();
        assert!(err.contains("boom on 2"), "{err}");

        // With retries, a flaky item eventually succeeds.
        let tries = std::sync::atomic::AtomicU64::new(0);
        let got = ex.with_retries(2).try_map(&[0u32], |_, _| {
            let n = tries.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            assert!(n >= 2, "fail the first two attempts");
            42u32
        });
        assert_eq!(got, vec![Ok(42)]);
    }

    #[test]
    fn panic_inject_parses_and_matches() {
        let p = PanicInject::parse("BitTorrent:42:1").unwrap();
        assert!(p.should_fail("BitTorrent", 42, 0));
        assert!(!p.should_fail("BitTorrent", 42, 1), "only the first attempt");
        assert!(!p.should_fail("BitTorrent", 43, 0), "wrong seed");
        assert!(!p.should_fail("T-Chain", 42, 0), "wrong label");

        let p = PanicInject::parse("T-Chain:*:*").unwrap();
        assert!(p.should_fail("T-Chain", 1, 0));
        assert!(p.should_fail("T-Chain", 999, 7));

        for bad in ["", "x", "a:b", "a:b:c:d", "a:nan:1", "a:1:nan", ":1:1"] {
            assert!(PanicInject::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn backoff_is_deterministic_exponential_and_capped() {
        let fp = 0x1234_5678_9abc_def0u64;
        assert_eq!(backoff_ms(fp, 0), backoff_ms(fp, 0));
        for attempt in 0..10 {
            let ms = backoff_ms(fp, attempt);
            let base = 25u64 << attempt.min(6);
            assert!(ms >= base.min(2_000), "attempt {attempt}: {ms}");
            assert!(ms <= 2_000, "attempt {attempt}: {ms}");
        }
        // Different fingerprints jitter differently (with overwhelming
        // probability for these two).
        assert_ne!(backoff_ms(1, 0), backoff_ms(2, 0));
    }

    #[test]
    fn batch_error_display_names_the_cell() {
        let err = BatchError {
            figure: "fig4".to_string(),
            total: 6,
            failures: vec![JobFailure {
                slot: 3,
                mechanism: "BitTorrent".to_string(),
                peers: 80,
                seed: 42,
                attempts: 2,
                kind: FailureKind::Panic,
                message: "boom".to_string(),
                backoff_ms: vec![31],
            }],
        };
        let text = err.to_string();
        for needle in ["fig4", "BitTorrent", "N=80", "seed 42", "panic", "boom"] {
            assert!(text.contains(needle), "{text}");
        }
    }
}
