//! Parallel batch execution of independent simulation jobs.
//!
//! Every experiment in this crate decomposes into a grid of *independent*
//! simulation runs — mechanism × seed × attack scenario — whose results
//! are then aggregated and written sequentially. This module provides the
//! execution layer for that decomposition:
//!
//! - [`SimJob`] is one typed cell of the grid (built en masse with
//!   [`SimJob::grid`]).
//! - [`Executor`] fans a slice of jobs out across a bounded pool of
//!   `std::thread::scope` workers and collects results **in slot order**,
//!   so output is byte-identical regardless of worker count.
//!
//! Determinism comes for free from the simulation itself: each job's
//! randomness derives entirely from its own seed through `coop-des`'s
//! [`SeedTree`](coop_des::rng::SeedTree) streams, so a job behaves
//! identically whether it runs first on one thread or last on sixteen.
//! The executor preserves that property end to end by never letting
//! scheduling order leak into result order.

use coop_attacks::AttackPlan;
use coop_faults::FaultPlan;
use coop_incentives::MechanismKind;
use coop_swarm::SimResult;
use coop_telemetry::{Recorder, TelemetryConfig, TelemetryReport};

use crate::runners::{run_sim, run_sim_traced};
use crate::telemetry::{BatchTrace, JobTrace, TelemetryOpts};
use crate::Scale;

/// One independent simulation run: a cell of the mechanism × seed ×
/// attack-scenario grid.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimJob {
    /// The incentive mechanism under test.
    pub kind: MechanismKind,
    /// Swarm scale (population, file size, horizon).
    pub scale: Scale,
    /// Seed for every random draw in the run.
    pub seed: u64,
    /// Attack scenario, or `None` for an all-compliant swarm.
    pub plan: Option<AttackPlan>,
    /// Fault/churn scenario, or `None` for a fault-free run.
    pub faults: Option<FaultPlan>,
}

impl SimJob {
    /// Expands a run grid into jobs: for each seed (outer), all six
    /// mechanisms in [`MechanismKind::ALL`] order (inner), with the
    /// scenario chosen per mechanism by `plan_for`.
    ///
    /// The seed-major layout means `jobs[s * 6 .. (s + 1) * 6]` is exactly
    /// the figure row set for `seeds[s]`.
    pub fn grid(
        scale: Scale,
        seeds: &[u64],
        plan_for: impl Fn(MechanismKind) -> Option<AttackPlan>,
    ) -> Vec<SimJob> {
        seeds
            .iter()
            .flat_map(|&seed| {
                MechanismKind::ALL.iter().map(move |&kind| (seed, kind))
            })
            .map(|(seed, kind)| SimJob {
                kind,
                scale,
                seed,
                plan: plan_for(kind),
                faults: None,
            })
            .collect()
    }

    /// Runs this job to completion.
    pub fn run(&self) -> SimResult {
        run_sim(
            self.kind,
            self.scale,
            self.plan.as_ref(),
            self.faults.as_ref(),
            self.seed,
        )
    }

    /// Runs this job with an enabled recorder built from `config`,
    /// returning both the result and the gathered telemetry. The result
    /// is identical to [`SimJob::run`] — the recorder only observes.
    pub fn run_traced(&self, config: &TelemetryConfig) -> (SimResult, TelemetryReport) {
        run_sim_traced(
            self.kind,
            self.scale,
            self.plan.as_ref(),
            self.faults.as_ref(),
            self.seed,
            Recorder::enabled(config.clone()),
        )
    }

    /// The job's display label: its mechanism's canonical name.
    pub fn label(&self) -> &'static str {
        self.kind.name()
    }
}

/// A bounded pool of scoped worker threads for running independent jobs.
///
/// Workers claim jobs from a shared atomic cursor (no per-job locking) and
/// stamp each result with its slot index; the caller receives results in
/// input order. With `jobs = 1` the executor degenerates to a plain
/// sequential loop on the calling thread — useful as the determinism
/// baseline.
#[derive(Clone, Copy, Debug)]
pub struct Executor {
    jobs: usize,
}

impl Executor {
    /// An executor with exactly `jobs` workers (clamped to at least 1).
    pub fn new(jobs: usize) -> Self {
        Executor {
            jobs: jobs.max(1),
        }
    }

    /// A single-threaded executor (the sequential baseline).
    pub fn sequential() -> Self {
        Executor::new(1)
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Maps `run` over `items` using up to `self.jobs()` worker threads.
    ///
    /// `run` receives `(slot_index, &item)`; the returned vector is in
    /// slot order — position `i` holds the result for `items[i]` no
    /// matter which worker computed it or when it finished.
    pub fn map<I, T, F>(&self, items: &[I], run: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
    {
        let workers = self.jobs.min(items.len());
        if workers <= 1 {
            return items.iter().enumerate().map(|(i, it)| run(i, it)).collect();
        }
        let cursor = std::sync::atomic::AtomicUsize::new(0);
        let mut tagged: Vec<(usize, T)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut mine: Vec<(usize, T)> = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            let Some(item) = items.get(i) else {
                                break;
                            };
                            mine.push((i, run(i, item)));
                        }
                        mine
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("batch worker panicked"))
                .collect()
        });
        tagged.sort_by_key(|&(i, _)| i);
        debug_assert_eq!(tagged.len(), items.len());
        tagged.into_iter().map(|(_, t)| t).collect()
    }

    /// Runs a batch of simulation jobs, returning results in job order.
    pub fn run_sims(&self, jobs: &[SimJob]) -> Vec<SimResult> {
        self.map(jobs, |_, job| job.run())
    }

    /// Runs a batch with per-job telemetry: results in job order plus a
    /// slot-ordered [`BatchTrace`] (job spans with wall time, slow-job
    /// flags, merged counters).
    ///
    /// When `opts` is disabled this is exactly [`Executor::run_sims`] —
    /// results never depend on whether tracing is on, and the trace's
    /// slot ordering never depends on the worker count.
    pub fn run_sims_traced(
        &self,
        jobs: &[SimJob],
        opts: &TelemetryOpts,
    ) -> (Vec<SimResult>, Option<BatchTrace>) {
        if !opts.is_enabled() {
            return (self.run_sims(jobs), None);
        }
        let config = opts.recorder_config();
        let runs = self.map(jobs, |slot, job| {
            let started = std::time::Instant::now();
            let (result, report) = job.run_traced(&config);
            let wall_ms = u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX);
            (
                result,
                JobTrace {
                    slot,
                    label: job.label().to_string(),
                    seed: job.seed,
                    wall_ms,
                    slow: false,
                    report,
                },
            )
        });
        let (results, traces): (Vec<_>, Vec<_>) = runs.into_iter().unzip();
        (results, Some(BatchTrace::new(traces)))
    }
}

impl Default for Executor {
    /// An executor sized to the machine's available parallelism.
    fn default() -> Self {
        Executor::new(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_slot_order_regardless_of_workers() {
        let items: Vec<u64> = (0..37).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x * x).collect();
        for workers in [1, 2, 3, 8, 64] {
            let got = Executor::new(workers).map(&items, |_, &x| x * x);
            assert_eq!(got, expected, "workers = {workers}");
        }
    }

    #[test]
    fn map_handles_empty_and_oversized_pools() {
        let empty: Vec<u32> = Vec::new();
        assert!(Executor::new(8).map(&empty, |_, &x| x).is_empty());
        let one = [7u32];
        assert_eq!(Executor::new(999).map(&one, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn grid_is_seed_major_in_mechanism_order() {
        let jobs = SimJob::grid(Scale::Quick, &[1, 2], |kind| {
            (kind == MechanismKind::Altruism).then(|| AttackPlan::simple(0.2))
        });
        assert_eq!(jobs.len(), 2 * MechanismKind::ALL.len());
        for (i, job) in jobs.iter().enumerate() {
            assert_eq!(job.seed, [1u64, 2][i / MechanismKind::ALL.len()]);
            assert_eq!(job.kind, MechanismKind::ALL[i % MechanismKind::ALL.len()]);
            assert_eq!(job.plan.is_some(), job.kind == MechanismKind::Altruism);
        }
    }
}
