//! The parallel executor must be an optimization, not a semantic change:
//! fanning a job grid across worker threads has to produce *byte-identical*
//! results to running the same grid sequentially, in the same order.

use coop_attacks::AttackPlan;
use coop_experiments::{Executor, Scale, SimJob};
use coop_incentives::MechanismKind;

#[test]
fn parallel_batches_match_sequential_byte_for_byte() {
    // All eight mechanisms at quick scale, each under its most effective
    // attack — covering compliant allocation, free-riding, collusion,
    // whitewashing, epoch-settled and consensus-reputation code paths
    // in one grid.
    let jobs = SimJob::grid(Scale::Quick, &[9], |kind| {
        Some(AttackPlan::most_effective(kind, 0.2))
    });
    assert_eq!(jobs.len(), MechanismKind::EXTENDED.len());

    let sequential = Executor::sequential().run_sims(&jobs);
    let parallel = Executor::new(4).run_sims(&jobs);

    assert_eq!(sequential.len(), parallel.len());
    for ((kind, seq), par) in MechanismKind::EXTENDED.iter().zip(&sequential).zip(&parallel) {
        // SimResult derives PartialEq over every observable — peer records,
        // totals, byte counters and all six time series — so equality here
        // means the artifacts rendered from these results are identical.
        assert_eq!(seq, par, "{kind}: parallel run diverged from sequential");
    }
}
