//! Scenario packs are *data*: the spec → jobs compilation must be stable
//! (pinned golden fingerprints, canonical under key reordering), faithful
//! (a zero-fault figure-style scenario writes byte-identical artifacts to
//! the plain fig4 runner), and diagnosable (spec errors carry file, line
//! and field).

use std::path::PathBuf;

use coop_experiments::runners::{fig4, sweep};
use coop_experiments::scenario::{builtin_names, BUILTIN_SCENARIOS};
use coop_experiments::{load_pack, Executor, OutputDir, Scale, Scenario, TelemetryOpts};
use coop_incentives::MechanismKind;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "coop-scn-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn builtin_scenarios_round_trip_through_their_canonical_json() {
    for (name, text) in BUILTIN_SCENARIOS {
        let parsed = Scenario::parse(text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let reparsed = Scenario::parse(&parsed.to_json())
            .unwrap_or_else(|e| panic!("{name} canonical json: {e}"));
        assert_eq!(parsed, reparsed, "{name}: canonical JSON round-trip drifted");
        assert_eq!(
            parsed.fingerprint(),
            reparsed.fingerprint(),
            "{name}: fingerprint not stable across round-trip"
        );
    }
}

/// Golden spec fingerprints for the built-in library. These pin the
/// canonical encoding: any change to a built-in spec file *or* to the
/// canonical `to_json()` encoding shows up here and must be deliberate
/// (it invalidates `--resume` for in-flight sweeps of that scenario).
#[test]
fn builtin_fingerprints_are_pinned() {
    let golden: &[(&str, u64)] = &[
        ("flash-crowd-baseline", 0x703d_21b6_ecdf_1404),
        ("software-update-push", 0x4be3_15b3_0b40_2fe5),
        ("mobile-churn-storm", 0xb069_7c5f_e4ba_d236),
        ("seeder-starved-archive", 0x8c13_4418_f432_7e62),
        ("epoch-settlement", 0xe137_b39e_b041_f318),
        ("consensus-bans", 0x4f2b_4262_7b23_9ecc),
    ];
    assert_eq!(builtin_names().len(), golden.len());
    for (name, expected) in golden {
        let pack = load_pack(name).unwrap();
        let actual = pack.scenarios[0].fingerprint();
        assert_eq!(
            actual, *expected,
            "{name}: spec fingerprint drifted (actual {actual:#018x})"
        );
    }
}

#[test]
fn fingerprints_are_stable_under_spec_key_reordering() {
    let ordered = r#"{
        "spec_version": 1,
        "name": "reorder-probe",
        "arrival": {"process": "poisson", "mean_gap_s": 1.5},
        "attack": {"mode": "freeride", "fraction": 0.3},
        "faults": {"churn_rate": 0.01, "loss_prob": 0.02},
        "peers": [40, 80],
        "replicates": 2
    }"#;
    let reordered = r#"{
        "replicates": 2,
        "peers": [40, 80],
        "faults": {"loss_prob": 0.02, "churn_rate": 0.01},
        "attack": {"fraction": 0.3, "mode": "freeride"},
        "arrival": {"mean_gap_s": 1.5, "process": "poisson"},
        "name": "reorder-probe",
        "spec_version": 1
    }"#;
    let a = Scenario::parse(ordered).unwrap();
    let b = Scenario::parse(reordered).unwrap();
    assert_eq!(a, b);
    assert_eq!(a.fingerprint(), b.fingerprint());
}

/// The tentpole acceptance bar: a figure-style scenario with no faults, no
/// attack and default workload compiles onto exactly the plain fig4 job
/// stream, so every fig4 artifact it writes is byte-identical to the plain
/// runner's.
#[test]
fn zero_fault_baseline_scenario_matches_plain_fig4_byte_for_byte() {
    let seed = 7;
    let plain_dir = tmp_dir("plain");
    let sweep_dir = tmp_dir("sweep");
    let plain_out = OutputDir::new(&plain_dir);
    let sweep_out = OutputDir::new(&sweep_dir);
    let executor = Executor::default();
    let opts = TelemetryOpts::disabled();

    // The scenario's `mechanisms: "all"` means the paper's six; restrict
    // the plain runner (which defaults to `EXTENDED`) to the same list.
    fig4::try_run_with_telemetry_for(
        Scale::Quick,
        seed,
        &MechanismKind::ALL,
        &executor,
        &opts,
        &plain_out,
    )
    .expect("plain fig4 runs");

    let pack = load_pack("flash-crowd-baseline").unwrap();
    let (report, errors) =
        sweep::try_run_pack(&pack, Scale::Quick, seed, 1, &executor, &opts, &sweep_out);
    assert!(errors.is_empty(), "{:?}", errors.first().map(ToString::to_string));
    assert_eq!(report.scenarios.len(), 1);
    assert_eq!(report.get("flash-crowd-baseline").figure, "fig4");

    let mut compared = 0;
    for entry in std::fs::read_dir(&plain_dir).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_str().unwrap().to_string();
        if !name.starts_with("fig4") {
            continue; // journal/manifest artifacts are run-identity, not figure data
        }
        let twin = sweep_dir.join(&name);
        assert!(twin.is_file(), "sweep run did not write {name}");
        assert_eq!(
            std::fs::read(&path).unwrap(),
            std::fs::read(&twin).unwrap(),
            "{name}: scenario artifact differs from plain fig4"
        );
        compared += 1;
    }
    assert!(compared >= 6, "expected the full fig4 artifact set, compared {compared}");
    let _ = std::fs::remove_dir_all(&plain_dir);
    let _ = std::fs::remove_dir_all(&sweep_dir);
}

#[test]
fn epoch_settlement_builtin_compiles_to_the_declared_grid() {
    let pack = load_pack("epoch-settlement").unwrap();
    assert_eq!(pack.scenarios.len(), 1);
    let s = &pack.scenarios[0];
    assert_eq!(
        s.mechanisms,
        [
            MechanismKind::EpochSettlement,
            MechanismKind::FairTorrent,
            MechanismKind::Reputation,
            MechanismKind::Altruism,
        ]
    );
    assert_eq!(s.replicates, 2);
    let jobs = s.jobs(Scale::Quick, 11, 1);
    // replicates (outer) x mechanisms (inner), every job under the attack.
    assert_eq!(jobs.len(), 2 * s.mechanisms.len());
    assert_eq!(jobs[0].kind, MechanismKind::EpochSettlement);
    assert!(jobs.iter().all(|j| j.plan.is_some()));
}

#[test]
fn spec_file_errors_name_the_file_line_and_field() {
    let dir = tmp_dir("err");
    let bad = dir.join("bad-scenario.json");
    std::fs::write(
        &bad,
        "{\n  \"spec_version\": 1,\n  \"name\": \"bad\",\n  \"attack\": {\"mode\": \"freeride\",\n             \"fraction\": 1.5}\n}\n",
    )
    .unwrap();
    let err = load_pack(bad.to_str().unwrap()).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("bad-scenario.json"), "no file in: {msg}");
    assert!(msg.contains("fraction"), "no field in: {msg}");
    assert!(msg.contains(':'), "no location separator in: {msg}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_scenario_error_lists_the_builtin_library() {
    let err = load_pack("no-such-scenario").unwrap_err();
    let msg = err.to_string();
    for name in builtin_names() {
        assert!(msg.contains(name), "'{name}' missing from: {msg}");
    }
}

#[test]
fn directory_packs_load_sorted_and_reject_duplicate_names() {
    let dir = tmp_dir("pack");
    let spec = |name: &str| {
        format!(r#"{{"spec_version": 1, "name": "{name}", "artifacts": "sweep", "peers": [20]}}"#)
    };
    std::fs::write(dir.join("b.json"), spec("beta")).unwrap();
    std::fs::write(dir.join("a.json"), spec("alpha")).unwrap();
    let pack = load_pack(dir.to_str().unwrap()).unwrap();
    let names: Vec<&str> = pack.scenarios.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(names, ["alpha", "beta"], "pack order must follow file names");

    std::fs::write(dir.join("c.json"), spec("alpha")).unwrap();
    let err = load_pack(dir.to_str().unwrap()).unwrap_err();
    assert!(err.to_string().contains("duplicate"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}
