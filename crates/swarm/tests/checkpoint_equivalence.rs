//! Checkpoint/restore equivalence battery.
//!
//! Pins the crash-safety contract of [`SimCheckpoint`]: for every
//! mechanism, (a) running with any checkpoint cadence yields results
//! identical to the cadence-free run — including the pre-existing golden
//! fingerprints from `golden_equivalence.rs` — and (b) restoring a
//! mid-run checkpoint onto a freshly built simulation and finishing
//! yields a [`SimResult`] exactly equal to the straight-through run's.
//! The scenario deliberately reuses the golden battery's mixed
//! population (large-view, whitewashing, and colluding free-riders) so
//! the snapshot covers attack state, and one case checkpoints across a
//! fault-schedule boundary to cover the fault cursor.

use coop_attacks::FreeRider;
use coop_des::Duration;
use coop_incentives::analysis::capacity::CapacityClassMix;
use coop_incentives::MechanismKind;
use coop_swarm::{
    flash_crowd_with, CheckpointError, FaultEvent, FaultKind, FaultSchedule, PeerSpec, PeerTags,
    SimResult, Simulation, SimulationBuilder, SwarmConfig,
};

/// FNV-1a accumulator, identical to `golden_equivalence.rs`.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn u(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn f(&mut self, v: f64) {
        self.u(v.to_bits());
    }

    fn opt_f(&mut self, v: Option<f64>) {
        match v {
            Some(x) => self.f(x),
            None => self.u(u64::MAX),
        }
    }
}

fn fingerprint(r: &SimResult) -> u64 {
    let mut h = Fnv::new();
    h.u(r.rounds_run);
    h.f(r.sim_seconds);
    h.u(r.peers.len() as u64);
    for p in &r.peers {
        h.u(u64::from(p.id.index()));
        h.f(p.capacity_bps);
        h.u(u64::from(p.compliant));
        h.f(p.arrival_s);
        h.opt_f(p.bootstrap_s);
        h.opt_f(p.completion_s);
        h.u(p.bytes_sent);
        h.u(p.bytes_received_usable);
        h.u(p.bytes_received_raw);
        h.u(p.bytes_inherited);
    }
    let t = &r.totals;
    h.u(t.uploaded_compliant);
    h.u(t.uploaded_freeriders);
    h.u(t.uploaded_seeder);
    h.u(t.freerider_received_usable);
    h.u(t.freerider_received_raw);
    h.u(t.freerider_received_from_peers);
    h.u(t.aborted_bytes);
    for &b in &t.bytes_by_reason {
        h.u(b);
    }
    for series in [
        &r.fairness_avg,
        &r.fairness_stat,
        &r.bootstrapped_frac,
        &r.completed_frac,
        &r.susceptibility,
        &r.diversity,
    ] {
        for &(t, v) in series.points() {
            h.f(t);
            h.f(v);
        }
    }
    h.0
}

/// The pinned golden fingerprints from `golden_equivalence.rs` (seed 42,
/// [`MechanismKind::ALL`] order). Checkpointed runs must reproduce them
/// exactly — checkpointing may never perturb results.
const GOLDEN: [u64; 6] = [
    0xe647_d9a2_5942_dd97,
    0x4dc7_f772_bf4d_dc1e,
    0xaff1_6357_0ced_c84f,
    0x120e_7c42_7faf_ce09,
    0xd63b_074e_2427_a6d8,
    0x322b_a4a6_b3b0_7ed7,
];

/// The golden battery's mixed scenario, reconstructed identically on
/// every call (restore targets must be built from the same inputs).
fn scenario_builder(kind: MechanismKind, seed: u64) -> SimulationBuilder {
    let mut config = SwarmConfig::tiny_test();
    config.seed = seed;
    config.neighbor_degree = 4;
    config.max_rounds = 40;
    let mut pop: Vec<PeerSpec> = flash_crowd_with(
        &config,
        14,
        kind,
        seed,
        &CapacityClassMix::paper_default(),
        Duration::from_secs(3),
    );
    let freerider_tags = [
        PeerTags {
            compliant: false,
            large_view: true,
            ..PeerTags::compliant()
        },
        PeerTags {
            compliant: false,
            whitewash_interval: Some(5),
            ..PeerTags::compliant()
        },
        PeerTags {
            compliant: false,
            collusion_ring: Some(0),
            ..PeerTags::compliant()
        },
        PeerTags {
            compliant: false,
            collusion_ring: Some(0),
            ..PeerTags::compliant()
        },
    ];
    for (spec, tags) in pop.iter_mut().zip(freerider_tags) {
        spec.tags = tags;
        spec.mechanism = Box::new(move || Box::new(FreeRider::new(kind)));
    }
    Simulation::builder(config).population(pop)
}

#[test]
fn checkpointed_runs_reproduce_the_golden_fingerprints() {
    for (i, &kind) in MechanismKind::ALL.iter().enumerate() {
        let (result, _report, log) = scenario_builder(kind, 42)
            .checkpoint_every(3)
            .build()
            .unwrap()
            .run_checkpointed();
        assert!(log.taken() > 0, "{kind:?}: no checkpoints captured");
        assert_eq!(
            fingerprint(&result),
            GOLDEN[i],
            "{kind:?}: checkpointing perturbed the run"
        );
    }
}

#[test]
fn restore_then_finish_equals_straight_run_for_every_mechanism() {
    for &kind in &MechanismKind::ALL {
        let straight = scenario_builder(kind, 42).build().unwrap().run();
        let (checkpointed, _report, log) = scenario_builder(kind, 42)
            .checkpoint_every(4)
            .build()
            .unwrap()
            .run_checkpointed();
        assert_eq!(straight, checkpointed, "{kind:?}: cadence changed results");
        for ckpt in [log.first().unwrap(), log.latest().unwrap()] {
            let resumed = scenario_builder(kind, 42)
                .build()
                .unwrap()
                .restore(ckpt)
                .unwrap_or_else(|e| panic!("{kind:?}: restore failed: {e}"))
                .run();
            assert_eq!(
                straight, resumed,
                "{kind:?}: resume from round {} diverged",
                ckpt.round()
            );
        }
    }
}

#[test]
fn restore_across_a_fault_boundary() {
    let faults = FaultSchedule::from_events(
        vec![
            FaultEvent {
                round: 6,
                peer: 4,
                kind: FaultKind::Depart,
            },
            FaultEvent {
                round: 9,
                peer: 5,
                kind: FaultKind::OutageStart,
            },
            FaultEvent {
                round: 12,
                peer: 5,
                kind: FaultKind::OutageEnd,
            },
        ],
        0.0,
        42,
    );
    let kind = MechanismKind::TChain;
    let straight = scenario_builder(kind, 42)
        .fault_schedule(faults.clone())
        .build()
        .unwrap()
        .run();
    let (checkpointed, _report, log) = scenario_builder(kind, 42)
        .fault_schedule(faults.clone())
        .checkpoint_every(4)
        .build()
        .unwrap()
        .run_checkpointed();
    assert_eq!(straight, checkpointed);
    // The first checkpoint (round 4) precedes every fault; the latest
    // follows at least the departure — both must resume identically.
    for ckpt in [log.first().unwrap(), log.latest().unwrap()] {
        let resumed = scenario_builder(kind, 42)
            .fault_schedule(faults.clone())
            .build()
            .unwrap()
            .restore(ckpt)
            .unwrap()
            .run();
        assert_eq!(
            straight,
            resumed,
            "resume from round {} diverged across the fault schedule",
            ckpt.round()
        );
    }
}

#[test]
fn restore_validates_its_target() {
    let kind = MechanismKind::BitTorrent;
    let (_result, _report, log) = scenario_builder(kind, 42)
        .checkpoint_every(4)
        .build()
        .unwrap()
        .run_checkpointed();
    let ckpt = log.first().unwrap();

    // Different config (seed differs) is rejected.
    let err = scenario_builder(kind, 43)
        .build()
        .unwrap()
        .restore(ckpt)
        .unwrap_err();
    assert_eq!(err, CheckpointError::ConfigMismatch);

    // A restored simulation is no longer fresh.
    let restored = scenario_builder(kind, 42)
        .build()
        .unwrap()
        .restore(ckpt)
        .unwrap();
    let err = restored.restore(ckpt).unwrap_err();
    assert_eq!(err, CheckpointError::NotFresh);

    // Errors render a usable message.
    assert!(err.to_string().contains("freshly built"));

    // Same config but a different population shape is rejected.
    let mut config = SwarmConfig::tiny_test();
    config.seed = 42;
    config.neighbor_degree = 4;
    config.max_rounds = 40;
    let smaller = flash_crowd_with(
        &config,
        10,
        kind,
        42,
        &CapacityClassMix::paper_default(),
        Duration::from_secs(3),
    );
    let err = Simulation::builder(config)
        .population(smaller)
        .build()
        .unwrap()
        .restore(ckpt)
        .unwrap_err();
    assert_eq!(
        err,
        CheckpointError::PopulationMismatch {
            expected: 14,
            found: 10
        }
    );
}

#[test]
fn checkpoint_log_exposes_cadence_metadata() {
    let (result, _report, log) = scenario_builder(MechanismKind::Altruism, 42)
        .checkpoint_every(5)
        .build()
        .unwrap()
        .run_checkpointed();
    let first = log.first().unwrap();
    let latest = log.latest().unwrap();
    assert_eq!(first.round(), 5, "first capture lands on the cadence");
    assert_eq!(first.round() % 5, 0);
    assert!(latest.round() <= result.rounds_run);
    assert!(first.pending_events() > 0, "a next RoundTick is queued");
    // Taken count matches the rounds that both hit the cadence and
    // scheduled a successor round.
    assert!(log.taken() >= 1);
    let debug = format!("{first:?}");
    assert!(debug.contains("SimCheckpoint"), "{debug}");
}
