//! Focused tests of the attack-substrate features: large-view neighbor
//! sets, collusion rings (T-Chain false confirmation and reputation false
//! praise), whitewashing identity churn, and the trusted-reputation
//! defense.

use coop_attacks::FreeRider;
use coop_des::Duration;
use coop_incentives::analysis::capacity::CapacityClassMix;
use coop_incentives::MechanismKind;
use coop_swarm::{flash_crowd_with, PeerSpec, PeerTags, SimResult, Simulation, SwarmConfig};

fn config(seed: u64) -> SwarmConfig {
    let mut c = SwarmConfig::tiny_test();
    c.seed = seed;
    c.neighbor_degree = 4; // small, so large-view visibly differs
    c
}

fn population(config: &SwarmConfig, n: usize, kind: MechanismKind) -> Vec<PeerSpec> {
    flash_crowd_with(
        config,
        n,
        kind,
        config.seed,
        &CapacityClassMix::paper_default(),
        Duration::from_secs(3),
    )
}

fn make_freerider(spec: &mut PeerSpec, kind: MechanismKind, tags: PeerTags) {
    spec.tags = tags;
    spec.mechanism = Box::new(move || Box::new(FreeRider::new(kind)));
}

fn run(config: SwarmConfig, population: Vec<PeerSpec>) -> SimResult {
    Simulation::builder(config)
        .population(population)
        .build()
        .unwrap()
        .run()
}

#[test]
fn large_view_freerider_extracts_more_from_altruism() {
    let seed = 301;
    let results: Vec<u64> = [false, true]
        .iter()
        .map(|&large_view| {
            let mut config = config(seed);
            // A larger file and a short horizon so the free-rider cannot
            // finish either way — the comparison is about extraction rate.
            config.file = coop_piece::FileSpec::new(4 * 1024 * 1024, 16 * 1024);
            // A fast seeder so piece introduction is not the bottleneck
            // (otherwise every peer, free-rider included, just tracks the
            // seeder's injection rate and neighbor counts cannot matter).
            config.seeder_bps = 256_000.0;
            config.max_rounds = 25;
            // Enough peers that the bounded neighbor graph stays sparse
            // (small swarms densify to near-complete via symmetric edges,
            // hiding the exploit).
            let mut pop = population(&config, 40, MechanismKind::Altruism);
            make_freerider(
                &mut pop[0],
                MechanismKind::Altruism,
                PeerTags {
                    compliant: false,
                    large_view,
                    ..PeerTags::compliant()
                },
            );
            let r = run(config, pop);
            r.totals.freerider_received_from_peers
        })
        .collect();
    assert!(
        results[1] > results[0],
        "a large-view free-rider must receive more: {} vs {}",
        results[1],
        results[0]
    );
}

#[test]
fn tchain_collusion_unlocks_pieces_for_freeriders() {
    let seed = 302;
    let results: Vec<u64> = [false, true]
        .iter()
        .map(|&collude| {
            let config = config(seed);
            let mut pop = population(&config, 14, MechanismKind::TChain);
            for spec in pop.iter_mut().take(4) {
                make_freerider(
                    spec,
                    MechanismKind::TChain,
                    PeerTags {
                        compliant: false,
                        collusion_ring: if collude { Some(0) } else { None },
                        // Colluders connect widely so the designated
                        // reciprocation targets are often ring members.
                        large_view: collude,
                        ..PeerTags::compliant()
                    },
                );
            }
            let r = run(config, pop);
            r.totals.freerider_received_from_peers
        })
        .collect();
    assert!(
        results[1] > results[0],
        "collusion must unlock encrypted pieces: {} vs {} usable bytes",
        results[1],
        results[0]
    );
}

#[test]
fn false_praise_inflates_reputation_share() {
    let seed = 303;
    let results: Vec<u64> = [0u64, 128 * 1024]
        .iter()
        .map(|&praise| {
            let config = config(seed);
            let mut pop = population(&config, 14, MechanismKind::Reputation);
            for spec in pop.iter_mut().take(4) {
                make_freerider(
                    spec,
                    MechanismKind::Reputation,
                    PeerTags {
                        compliant: false,
                        collusion_ring: Some(0),
                        fake_praise_bytes: praise,
                        ..PeerTags::compliant()
                    },
                );
            }
            let r = run(config, pop);
            r.totals.freerider_received_from_peers
        })
        .collect();
    assert!(
        results[1] > results[0],
        "false praise must attract reputation-weighted bandwidth: {} vs {}",
        results[1],
        results[0]
    );
}

#[test]
fn trusted_reputation_blunts_false_praise() {
    let seed = 304;
    let results: Vec<u64> = [false, true]
        .iter()
        .map(|&trusted| {
            let mut config = config(seed);
            config.trusted_reputation = trusted;
            let mut pop = population(&config, 14, MechanismKind::Reputation);
            for spec in pop.iter_mut().take(4) {
                make_freerider(
                    spec,
                    MechanismKind::Reputation,
                    PeerTags {
                        compliant: false,
                        collusion_ring: Some(0),
                        fake_praise_bytes: 128 * 1024,
                        ..PeerTags::compliant()
                    },
                );
            }
            let r = run(config, pop);
            r.totals.freerider_received_from_peers
        })
        .collect();
    assert!(
        results[1] < results[0],
        "EigenTrust weighting must reduce the praise payoff: {} vs {}",
        results[1],
        results[0]
    );
}

#[test]
fn whitewashing_spawns_successors_that_keep_pieces() {
    let config = config(305);
    let mut pop = population(&config, 10, MechanismKind::FairTorrent);
    make_freerider(
        &mut pop[0],
        MechanismKind::FairTorrent,
        PeerTags {
            compliant: false,
            whitewash_interval: Some(6),
            ..PeerTags::compliant()
        },
    );
    let r = run(config, pop);
    let identities: Vec<_> = r.freeriders().collect();
    assert!(
        identities.len() > 1,
        "whitewasher must have rejoined at least once"
    );
    // Some successor identity inherited pieces from its predecessor.
    assert!(
        identities.iter().any(|p| p.bytes_inherited > 0),
        "successors keep downloaded data"
    );
}

#[test]
fn large_view_peers_connect_to_later_arrivals() {
    // A large-view peer arriving early must end up connected to peers that
    // arrive after it — verified indirectly: with degree 4 and 40 peers, a
    // large-view free-rider receives more than a bounded one.
    let seed = 306;
    let distinct_sources = |large_view: bool| -> usize {
        let mut config = config(seed);
        config.file = coop_piece::FileSpec::new(4 * 1024 * 1024, 16 * 1024);
        config.seeder_bps = 256_000.0;
        config.max_rounds = 25;
        let mut pop = population(&config, 40, MechanismKind::Altruism);
        // Earliest arrival gets the tag.
        let earliest = pop
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.arrival)
            .map(|(i, _)| i)
            .unwrap();
        make_freerider(
            &mut pop[earliest],
            MechanismKind::Altruism,
            PeerTags {
                compliant: false,
                large_view,
                ..PeerTags::compliant()
            },
        );
        let r = run(config, pop);
        // Proxy for distinct sources: usable bytes (more neighbors → more
        // altruistic draws land on the free-rider).
        r.totals.freerider_received_from_peers as usize
    };
    assert!(distinct_sources(true) > distinct_sources(false));
}

#[test]
fn stall_timeout_config_is_respected() {
    // A 1-round timeout still converges (aborted partials are re-requested)
    // and conservation holds.
    let mut config = config(307);
    config.stall_timeout_rounds = 1;
    let pop = population(&config, 10, MechanismKind::Altruism);
    let r = run(config, pop);
    assert!(r.completed_fraction() > 0.9);
    let sent: u64 = r.peers.iter().map(|p| p.bytes_sent).sum::<u64>() + r.totals.uploaded_seeder;
    let received: u64 = r.peers.iter().map(|p| p.bytes_received_raw).sum();
    assert_eq!(sent, received);
}
