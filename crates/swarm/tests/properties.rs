//! Property-based tests for the swarm simulator: invariants that must hold
//! for random configurations, populations and seeds.

use coop_incentives::MechanismKind;
use coop_swarm::{flash_crowd_with, PeerTags, SimResult, Simulation, SwarmConfig};
use coop_des::Duration;
use coop_incentives::analysis::capacity::CapacityClassMix;
use coop_piece::FileSpec;
use proptest::prelude::*;

fn kind_strategy() -> impl Strategy<Value = MechanismKind> {
    prop_oneof![
        Just(MechanismKind::Reciprocity),
        Just(MechanismKind::TChain),
        Just(MechanismKind::BitTorrent),
        Just(MechanismKind::FairTorrent),
        Just(MechanismKind::Reputation),
        Just(MechanismKind::Altruism),
    ]
}

fn small_config(seed: u64, pieces: u32, rounds: u64) -> SwarmConfig {
    let mut c = SwarmConfig::tiny_test();
    c.seed = seed;
    c.file = FileSpec::new(u64::from(pieces) * 4096, 4096);
    c.max_rounds = rounds;
    c
}

fn run(kind: MechanismKind, seed: u64, n: usize, pieces: u32, rounds: u64) -> SimResult {
    let config = small_config(seed, pieces, rounds);
    let population = flash_crowd_with(
        &config,
        n,
        kind,
        seed,
        &CapacityClassMix::paper_default(),
        Duration::from_secs(5),
    );
    Simulation::builder(config)
        .population(population)
        .build()
        .unwrap()
        .run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Eq. (1) holds for any mechanism, population size, piece count and
    /// seed: bytes sent equal bytes received.
    #[test]
    fn bytes_conserved(
        kind in kind_strategy(),
        seed in 0u64..1000,
        n in 3usize..14,
        pieces in 4u32..24,
    ) {
        let r = run(kind, seed, n, pieces, 120);
        let sent: u64 = r.peers.iter().map(|p| p.bytes_sent).sum::<u64>()
            + r.totals.uploaded_seeder;
        let received: u64 = r.peers.iter().map(|p| p.bytes_received_raw).sum();
        prop_assert_eq!(sent, received);
        prop_assert_eq!(r.totals.uploaded_total(), sent);
    }

    /// Per-peer sanity for any run: usable ≤ raw, bootstrap ≤ completion,
    /// nonnegative times, completed peers hold a full file.
    #[test]
    fn peer_records_consistent(
        kind in kind_strategy(),
        seed in 0u64..1000,
        n in 3usize..14,
    ) {
        let config_size = small_config(seed, 12, 240).file.size_bytes();
        let r = run(kind, seed, n, 12, 240);
        for p in &r.peers {
            prop_assert!(p.bytes_received_usable <= p.bytes_received_raw);
            if let (Some(b), Some(c)) = (p.bootstrap_s, p.completion_s) {
                prop_assert!(b <= c);
                prop_assert!(b >= 0.0);
            }
            if p.completion_s.is_some() {
                prop_assert!(
                    p.bytes_received_usable + p.bytes_inherited >= config_size
                );
            }
        }
    }

    /// Reciprocity never moves a peer byte, regardless of configuration.
    #[test]
    fn reciprocity_total_silence(seed in 0u64..1000, n in 3usize..14) {
        let r = run(MechanismKind::Reciprocity, seed, n, 12, 120);
        for p in &r.peers {
            prop_assert_eq!(p.bytes_sent, 0);
        }
        prop_assert_eq!(r.totals.uploaded_compliant, 0);
    }

    /// Determinism across the whole random configuration space.
    #[test]
    fn runs_are_reproducible(
        kind in kind_strategy(),
        seed in 0u64..1000,
        n in 3usize..10,
    ) {
        let a = run(kind, seed, n, 8, 100);
        let b = run(kind, seed, n, 8, 100);
        let fp = |r: &SimResult| -> Vec<(u64, u64)> {
            r.peers.iter().map(|p| (p.bytes_sent, p.bytes_received_raw)).collect()
        };
        prop_assert_eq!(fp(&a), fp(&b));
        prop_assert_eq!(a.rounds_run, b.rounds_run);
    }

    /// Free-riders (with arbitrary capability tags) never upload and never
    /// receive more usable than raw bytes; susceptibility stays in [0, 1].
    #[test]
    fn freerider_accounting(
        kind in kind_strategy(),
        seed in 0u64..1000,
        large_view in any::<bool>(),
        collude in any::<bool>(),
        whitewash in proptest::option::of(3u64..20),
    ) {
        let config = small_config(seed, 10, 150);
        let mut population = flash_crowd_with(
            &config,
            10,
            kind,
            seed,
            &CapacityClassMix::paper_default(),
            Duration::from_secs(5),
        );
        for spec in population.iter_mut().take(3) {
            spec.tags = PeerTags {
                compliant: false,
                large_view,
                collusion_ring: if collude { Some(1) } else { None },
                whitewash_interval: whitewash,
                fake_praise_bytes: if collude { 8192 } else { 0 },
                ..PeerTags::compliant()
            };
            spec.mechanism = Box::new(move || Box::new(coop_attacks::FreeRider::new(kind)));
        }
        let r = Simulation::builder(config)
        .population(population)
        .build()
        .unwrap()
        .run();
        let susc = r.final_susceptibility();
        prop_assert!((0.0..=1.0).contains(&susc));
        prop_assert_eq!(r.totals.uploaded_freeriders, 0);
        prop_assert!(
            r.totals.freerider_received_from_peers <= r.totals.freerider_received_usable
        );
    }
}
