//! Telemetry must be purely observational: attaching a recorder — at any
//! sampling rate — may never change a simulation's results, because the
//! recorder draws no randomness and no simulation branch consults it.

use coop_incentives::MechanismKind;
use coop_swarm::{flash_crowd, Simulation, SwarmConfig};
use coop_telemetry::{
    Category, MemorySink, Recorder, Sampling, TelemetryConfig, TraceEvent,
};

fn run_with(recorder: Recorder) -> (coop_swarm::SimResult, coop_telemetry::TelemetryReport) {
    let config = SwarmConfig::tiny_test();
    let population = flash_crowd(&config, 12, MechanismKind::TChain, 3);
    Simulation::builder(config)
        .population(population)
        .recorder(recorder)
        .build()
        .expect("valid setup")
        .run_traced()
}

#[test]
fn results_are_identical_across_telemetry_modes() {
    let (baseline, empty) = run_with(Recorder::disabled());
    assert_eq!(empty.events.len(), 0, "disabled recorder gathers nothing");

    let (full, report) = run_with(Recorder::enabled(TelemetryConfig {
        probe_every: 1,
        ..TelemetryConfig::default()
    }));
    assert_eq!(baseline, full, "full-rate telemetry changed the results");
    assert!(report.counter("swarm.rounds") > 0);

    let sampled_config = TelemetryConfig {
        probe_every: 7,
        sampling: Sampling::keep_all()
            .every(Category::Grant, 13)
            .every(Category::Transfer, 0)
            .every(Category::Probe, 3),
        ..TelemetryConfig::default()
    };
    let (sampled, _) = run_with(Recorder::enabled(sampled_config));
    assert_eq!(baseline, sampled, "sampling rate changed the results");
}

#[test]
fn enabled_recorder_gathers_probes_grants_and_engine_stats() {
    let (result, report) = run_with(Recorder::enabled(TelemetryConfig {
        probe_every: 1,
        ..TelemetryConfig::default()
    }));

    assert_eq!(report.counter("swarm.rounds"), result.rounds_run);
    assert!(report.counter("swarm.grants") > 0, "grants were recorded");
    assert!(report.counter("swarm.granted_bytes") > 0);
    assert!(report.counter("engine.events_processed") > 0);
    assert!(report.counter("engine.queue_depth_hwm") > 0);

    let probes: Vec<_> = report.events_in(Category::Probe).collect();
    assert_eq!(
        probes.len() as u64,
        result.rounds_run,
        "probe_every=1 probes every round"
    );
    // Probes carry a consistent bytes-by-reason delta stream: the deltas
    // must sum to (at most) the run's total attributed bytes.
    let mut delta_sum = 0u64;
    for p in &probes {
        if let TraceEvent::RoundProbe {
            bytes_by_reason_delta,
            ..
        } = p
        {
            delta_sum += bytes_by_reason_delta.iter().sum::<u64>();
        }
    }
    let total: u64 = result.totals.bytes_by_reason.iter().sum();
    assert!(delta_sum <= total);
    assert!(delta_sum > 0, "some bytes attributed in probes");

    assert!(
        report.events_in(Category::Grant).next().is_some(),
        "grant decisions traced"
    );
    assert_eq!(report.events_in(Category::Engine).count(), 1);

    // Histograms and spans surfaces populated.
    assert!(report
        .histograms
        .iter()
        .any(|(name, h)| name == "swarm.probe.active_peers" && h.count() > 0));
}

#[test]
fn sinks_stream_during_the_run() {
    let sink = MemorySink::new();
    let mut recorder = Recorder::enabled(TelemetryConfig {
        probe_every: 2,
        ..TelemetryConfig::default()
    });
    recorder.add_sink(Box::new(sink.clone()));
    let (_, report) = run_with(recorder);
    assert_eq!(sink.len(), report.events.len(), "sink saw the kept stream");
    for event in sink.events() {
        let line = event.to_jsonl();
        coop_telemetry::json::parse(&line).expect("sink events render valid JSONL");
    }
}
