//! Golden-value regression tests for the round hot path.
//!
//! Each test pins a fingerprint of a fixed-seed run. The fingerprint folds
//! in every observable byte count, completion time, and totals field, so
//! any change to allocation order, RNG consumption, or piece selection
//! shows up as a mismatch. Hot-path optimizations (the `pick_piece`
//! scratch buffers, per-round candidate precomputation) are required to
//! keep these bit-identical: they may only change *how* the same numbers
//! are produced, never the numbers.
//!
//! If a fingerprint changes because simulation *semantics* intentionally
//! changed, re-pin the constants and say why in the commit message.

use coop_attacks::FreeRider;
use coop_des::Duration;
use coop_incentives::analysis::capacity::CapacityClassMix;
use coop_incentives::MechanismKind;
use coop_swarm::{
    flash_crowd_with, FaultSchedule, PeerSpec, PeerTags, SimResult, Simulation, SwarmConfig,
};

/// FNV-1a accumulator: tiny, dependency-free, and stable across platforms.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn u(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn f(&mut self, v: f64) {
        self.u(v.to_bits());
    }

    fn opt_f(&mut self, v: Option<f64>) {
        match v {
            Some(x) => self.f(x),
            None => self.u(u64::MAX),
        }
    }
}

/// Folds every externally observable number in a [`SimResult`] into one
/// value. Two results with equal fingerprints are byte-identical for the
/// purposes of every figure and table in the workspace.
fn fingerprint(r: &SimResult) -> u64 {
    let mut h = Fnv::new();
    h.u(r.rounds_run);
    h.f(r.sim_seconds);
    h.u(r.peers.len() as u64);
    for p in &r.peers {
        h.u(u64::from(p.id.index()));
        h.f(p.capacity_bps);
        h.u(u64::from(p.compliant));
        h.f(p.arrival_s);
        h.opt_f(p.bootstrap_s);
        h.opt_f(p.completion_s);
        h.u(p.bytes_sent);
        h.u(p.bytes_received_usable);
        h.u(p.bytes_received_raw);
        h.u(p.bytes_inherited);
    }
    let t = &r.totals;
    h.u(t.uploaded_compliant);
    h.u(t.uploaded_freeriders);
    h.u(t.uploaded_seeder);
    h.u(t.freerider_received_usable);
    h.u(t.freerider_received_raw);
    h.u(t.freerider_received_from_peers);
    h.u(t.aborted_bytes);
    for &b in &t.bytes_by_reason {
        h.u(b);
    }
    for series in [
        &r.fairness_avg,
        &r.fairness_stat,
        &r.bootstrapped_frac,
        &r.completed_frac,
        &r.susceptibility,
        &r.diversity,
    ] {
        for &(t, v) in series.points() {
            h.f(t);
            h.f(v);
        }
    }
    h.0
}

/// A mixed scenario that walks every hot path: compliant peers, a
/// large-view free-rider, a whitewashing free-rider, and a two-member
/// collusion ring, under one mechanism.
fn scenario(kind: MechanismKind, seed: u64) -> SimResult {
    scenario_with_faults(kind, seed, None)
}

fn scenario_with_faults(
    kind: MechanismKind,
    seed: u64,
    faults: Option<FaultSchedule>,
) -> SimResult {
    let mut config = SwarmConfig::tiny_test();
    config.seed = seed;
    config.neighbor_degree = 4;
    config.max_rounds = 40;
    let mut pop: Vec<PeerSpec> = flash_crowd_with(
        &config,
        14,
        kind,
        seed,
        &CapacityClassMix::paper_default(),
        Duration::from_secs(3),
    );
    let freerider_tags = [
        PeerTags {
            compliant: false,
            large_view: true,
            ..PeerTags::compliant()
        },
        PeerTags {
            compliant: false,
            whitewash_interval: Some(5),
            ..PeerTags::compliant()
        },
        PeerTags {
            compliant: false,
            collusion_ring: Some(0),
            ..PeerTags::compliant()
        },
        PeerTags {
            compliant: false,
            collusion_ring: Some(0),
            ..PeerTags::compliant()
        },
    ];
    for (spec, tags) in pop.iter_mut().zip(freerider_tags) {
        spec.tags = tags;
        spec.mechanism = Box::new(move || Box::new(FreeRider::new(kind)));
    }
    let mut builder = Simulation::builder(config).population(pop);
    if let Some(faults) = faults {
        builder = builder.fault_schedule(faults);
    }
    builder.build().unwrap().run()
}

/// Pinned fingerprints for seed 42, one per mechanism, in
/// [`MechanismKind::ALL`] order. Regenerate by running this test and
/// copying the values from the failure message.
const GOLDEN: [u64; 6] = [
    0xe647_d9a2_5942_dd97,
    0x4dc7_f772_bf4d_dc1e,
    0xaff1_6357_0ced_c84f,
    0x120e_7c42_7faf_ce09,
    0xd63b_074e_2427_a6d8,
    0x322b_a4a6_b3b0_7ed7,
];

#[test]
fn fixed_seed_fingerprints_are_stable() {
    let actual: Vec<u64> = MechanismKind::ALL
        .iter()
        .map(|&kind| fingerprint(&scenario(kind, 42)))
        .collect();
    assert_eq!(
        actual,
        GOLDEN.to_vec(),
        "hot-path fingerprints changed; actual values (ALL order): {actual:#x?}"
    );
}

/// Running the same scenario twice must be deterministic — this guards the
/// fingerprint test itself against accidental nondeterminism (e.g. hash-map
/// iteration sneaking into the round loop).
#[test]
fn same_seed_same_fingerprint() {
    let a = fingerprint(&scenario(MechanismKind::FairTorrent, 7));
    let b = fingerprint(&scenario(MechanismKind::FairTorrent, 7));
    assert_eq!(a, b);
}

/// An empty fault schedule is the identity: attaching one must reproduce
/// the exact golden fingerprints of the schedule-free runs — the fault
/// layer may not perturb a single branch of the fault-free hot path.
#[test]
fn empty_fault_schedule_matches_goldens() {
    let actual: Vec<u64> = MechanismKind::ALL
        .iter()
        .map(|&kind| fingerprint(&scenario_with_faults(kind, 42, Some(FaultSchedule::empty()))))
        .collect();
    assert_eq!(
        actual,
        GOLDEN.to_vec(),
        "an empty fault schedule changed the hot path"
    );
}
