//! Incremental dirty-peer tracking for the event-driven round loop.
//!
//! The allocation loop's O(N·degree) scan visits every online peer every
//! round even when most of them provably have nothing to do. [`DirtySet`]
//! records the peers whose allocation-relevant state changed since the
//! current visit set was built (piece acquisitions, obligation churn,
//! neighbor edges, fault transitions); the round loop then visits only
//! the dirty peers plus their CSR-adjacent candidates (a candidate-side
//! change — say a piece discarded back to absent — re-interests its
//! *uploaders*, which are exactly its adjacency row).
//!
//! Determinism: marking is idempotent and order-insensitive (a bitmap
//! dedups), and consumers drain the set *sorted* — the visit set for a
//! round is a pure function of which peers were marked, never of the
//! order events happened to mark them in.

/// Deduplicated set of peer slots whose state changed since the last
/// visit-set build. `mark` is O(1); `drain_sorted` is O(k log k) in the
/// number of marked peers, independent of the population size.
#[derive(Clone, Debug, Default)]
pub struct DirtySet {
    /// One bit per peer slot; the dedup filter for `ids`.
    marked: Vec<u64>,
    /// The marked slots, insertion-ordered and duplicate-free.
    ids: Vec<u32>,
}

impl DirtySet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks one peer slot dirty (idempotent).
    pub fn mark(&mut self, id: u32) {
        let w = (id / 64) as usize;
        if w >= self.marked.len() {
            self.marked.resize(w + 1, 0);
        }
        let bit = 1u64 << (id % 64);
        if self.marked[w] & bit == 0 {
            self.marked[w] |= bit;
            self.ids.push(id);
        }
    }

    /// Marks every slot in `0..n` dirty (checkpoint restore, mode flips).
    pub fn mark_all(&mut self, n: usize) {
        for id in 0..n as u32 {
            self.mark(id);
        }
    }

    /// Is the slot currently marked?
    pub fn contains(&self, id: u32) -> bool {
        self.marked
            .get((id / 64) as usize)
            .is_some_and(|w| w & (1u64 << (id % 64)) != 0)
    }

    /// Number of marked slots.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when nothing is marked.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The marked slots in ascending order, without draining (checkpoint
    /// capture).
    pub fn snapshot_sorted(&self) -> Vec<u32> {
        let mut ids = self.ids.clone();
        ids.sort_unstable();
        ids
    }

    /// Removes and returns every marked slot in ascending order, leaving
    /// the set empty.
    pub fn drain_sorted(&mut self) -> Vec<u32> {
        self.ids.sort_unstable();
        let ids = std::mem::take(&mut self.ids);
        for &id in &ids {
            self.marked[(id / 64) as usize] &= !(1u64 << (id % 64));
        }
        ids
    }
}

/// A plain grow-on-demand bitmap over peer slots: the *live* visit set
/// for the round in progress. Rebuilt from the [`DirtySet`] (plus CSR
/// expansion and uploaders with outgoing partials) at the top of each
/// allocation phase, and updated mid-round by delivery paths so a peer
/// whose offer grows during the loop is still visited later in the same
/// round's shuffled order.
#[derive(Clone, Debug, Default)]
pub struct VisitBits {
    bits: Vec<u64>,
}

impl VisitBits {
    /// Clears all bits and ensures capacity for `n` slots.
    pub fn clear(&mut self, n: usize) {
        self.bits.clear();
        self.bits.resize(n.div_ceil(64), 0);
    }

    /// Sets the bit for `id` (growing if a peer spawned mid-round).
    pub fn set(&mut self, id: u32) {
        let w = (id / 64) as usize;
        if w >= self.bits.len() {
            self.bits.resize(w + 1, 0);
        }
        self.bits[w] |= 1u64 << (id % 64);
    }

    /// Is the bit for `id` set?
    pub fn get(&self, id: u32) -> bool {
        self.bits
            .get((id / 64) as usize)
            .is_some_and(|w| w & (1u64 << (id % 64)) != 0)
    }

    /// OR-merges another bitmap (shard partials) into this one.
    pub fn merge(&mut self, other: &VisitBits) {
        if other.bits.len() > self.bits.len() {
            self.bits.resize(other.bits.len(), 0);
        }
        for (mine, theirs) in self.bits.iter_mut().zip(other.bits.iter()) {
            *mine |= theirs;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    #[test]
    fn mark_dedups_and_drains_sorted() {
        let mut d = DirtySet::new();
        for &i in &[5u32, 1, 5, 900, 1, 64, 63] {
            d.mark(i);
        }
        assert_eq!(d.len(), 5);
        assert!(d.contains(900) && !d.contains(2));
        assert_eq!(d.snapshot_sorted(), vec![1, 5, 63, 64, 900]);
        assert_eq!(d.drain_sorted(), vec![1, 5, 63, 64, 900]);
        assert!(d.is_empty() && !d.contains(1));
        d.mark(1);
        assert_eq!(d.drain_sorted(), vec![1], "drain resets the dedup bitmap");
    }

    #[test]
    fn mark_all_covers_prefix() {
        let mut d = DirtySet::new();
        d.mark(70);
        d.mark_all(3);
        assert_eq!(d.drain_sorted(), vec![0, 1, 2, 70]);
    }

    #[test]
    fn visit_bits_set_get_merge() {
        let mut a = VisitBits::default();
        a.clear(10);
        a.set(3);
        a.set(200); // grows past the cleared capacity
        assert!(a.get(3) && a.get(200) && !a.get(4));
        let mut b = VisitBits::default();
        b.clear(300);
        b.set(64);
        b.merge(&a);
        assert!(b.get(3) && b.get(64) && b.get(200));
    }

    /// One random event in the incremental-vs-oracle battery.
    #[derive(Clone, Copy, Debug)]
    enum Op {
        Mark(u32),
        MarkAll(u8),
        Drain,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        // The vendored prop_oneof is uniform; bias toward single marks
        // (the common event) by repeating the arm.
        prop_oneof![
            (0u32..500).prop_map(Op::Mark),
            (0u32..500).prop_map(Op::Mark),
            (0u32..500).prop_map(Op::Mark),
            (0u8..100).prop_map(Op::MarkAll),
            Just(Op::Drain),
        ]
    }

    proptest! {
        /// The incremental `DirtySet` is observationally identical to a
        /// brute-force `BTreeSet` recompute under arbitrary interleavings
        /// of marks (arrivals, departures, piece acquisitions, choke
        /// flips all reduce to marks), bulk marks, and drains.
        #[test]
        fn dirty_set_matches_brute_force_recompute(ops in proptest::collection::vec(op_strategy(), 0..120)) {
            let mut subject = DirtySet::new();
            let mut oracle: BTreeSet<u32> = BTreeSet::new();
            for op in ops {
                match op {
                    Op::Mark(id) => {
                        subject.mark(id);
                        oracle.insert(id);
                    }
                    Op::MarkAll(n) => {
                        subject.mark_all(n as usize);
                        oracle.extend(0..u32::from(n));
                    }
                    Op::Drain => {
                        let drained = subject.drain_sorted();
                        let expect: Vec<u32> = std::mem::take(&mut oracle).into_iter().collect();
                        prop_assert_eq!(drained, expect);
                    }
                }
                prop_assert_eq!(subject.len(), oracle.len());
                prop_assert_eq!(subject.snapshot_sorted(), oracle.iter().copied().collect::<Vec<u32>>());
                for probe in [0u32, 1, 63, 64, 499] {
                    prop_assert_eq!(subject.contains(probe), oracle.contains(&probe));
                }
            }
        }
    }
}
