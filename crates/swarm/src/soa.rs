//! Struct-of-arrays mirrors of the hot per-round peer fields.
//!
//! The round loop's membership scans (allocation order, completion
//! detection, whitewash/collusion prefilters) touch only a few bits of
//! state per peer, but the naive scans stride over the full
//! [`PeerState`](crate::peer::PeerState) structs — hundreds of bytes per
//! peer once bitfields, ledgers and neighbor sets are counted. At fig4
//! scale that turns every pass into a cache-miss walk. [`HotPeers`] packs
//! the scanned bits into contiguous arrays indexed by peer slot so the
//! per-round passes read cache-dense memory.
//!
//! The arrays are written in lockstep with the authoritative `PeerState`
//! mutations (spawn, depart, outage start/end, piece acquisition); debug
//! builds cross-check every consumer against a fresh scan of the peer
//! structs, and the `hotpath_equivalence` battery pins result equality
//! against the naive scans end to end.

use crate::config::PeerTags;

/// Peer slot is still participating (no departure recorded).
const ACTIVE: u8 = 1 << 0;
/// Peer slot is held dark by a fault-schedule outage.
const OFFLINE: u8 = 1 << 1;
/// Peer churns identities (`tags.whitewash_interval` set).
const WHITEWASH: u8 = 1 << 2;
/// Peer belongs to a collusion ring (`tags.collusion_ring` set).
const COLLUSION: u8 = 1 << 3;
/// Peer holds at least one outstanding T-Chain obligation. The dirty-set
/// round loop must visit obliged peers every round (an obligation can be
/// granted toward a non-neighbor, so candidate-side dirtiness alone would
/// miss them); this bit keeps that check off the full `PeerState` structs.
const OBLIGED: u8 = 1 << 4;

/// Hot per-peer round state in struct-of-arrays layout, indexed by peer
/// slot (`PeerId::index()`).
#[derive(Clone, Debug, Default)]
pub(crate) struct HotPeers {
    /// Packed status bits; see the flag constants above.
    flags: Vec<u8>,
    /// Number of usable pieces (`have.count_ones()` kept incrementally;
    /// `have` bits are never cleared, so increments suffice).
    have_count: Vec<u32>,
}

impl HotPeers {
    /// Registers a freshly spawned peer slot. `have_count` is nonzero
    /// only for whitewash successors, which inherit pieces at birth.
    pub(crate) fn push(&mut self, tags: &PeerTags, have_count: u32) {
        let mut f = ACTIVE;
        if tags.whitewash_interval.is_some() {
            f |= WHITEWASH;
        }
        if tags.collusion_ring.is_some() {
            f |= COLLUSION;
        }
        self.flags.push(f);
        self.have_count.push(have_count);
    }

    /// Number of peer slots tracked (always `peers.len()`).
    pub(crate) fn len(&self) -> usize {
        self.flags.len()
    }

    /// Marks a slot departed (any departure kind).
    pub(crate) fn retire(&mut self, idx: usize) {
        self.flags[idx] &= !ACTIVE;
    }

    /// Sets or clears the outage bit.
    pub(crate) fn set_offline(&mut self, idx: usize, offline: bool) {
        if offline {
            self.flags[idx] |= OFFLINE;
        } else {
            self.flags[idx] &= !OFFLINE;
        }
    }

    /// Records one more usable piece for the slot.
    pub(crate) fn add_piece(&mut self, idx: usize) {
        self.have_count[idx] += 1;
    }

    /// Usable-piece count of the slot.
    pub(crate) fn have_count(&self, idx: usize) -> u32 {
        self.have_count[idx]
    }

    /// Mirror of `PeerState::is_active`.
    pub(crate) fn is_active(&self, idx: usize) -> bool {
        self.flags[idx] & ACTIVE != 0
    }

    /// Mirror of `is_active && !offline` (can exchange bytes this round).
    pub(crate) fn is_online(&self, idx: usize) -> bool {
        self.flags[idx] & (ACTIVE | OFFLINE) == ACTIVE
    }

    /// Sets or clears the outstanding-obligations bit (kept in lockstep
    /// with `PeerState::obligations` emptiness).
    pub(crate) fn set_obliged(&mut self, idx: usize, obliged: bool) {
        if obliged {
            self.flags[idx] |= OBLIGED;
        } else {
            self.flags[idx] &= !OBLIGED;
        }
    }

    /// Does the slot hold outstanding obligations?
    pub(crate) fn is_obliged(&self, idx: usize) -> bool {
        self.flags[idx] & OBLIGED != 0
    }

    /// Online slot that whitewashes its identity.
    pub(crate) fn whitewash_online(&self, idx: usize) -> bool {
        self.is_online(idx) && self.flags[idx] & WHITEWASH != 0
    }

    /// Online slot that belongs to a collusion ring.
    pub(crate) fn colluder_online(&self, idx: usize) -> bool {
        self.is_online(idx) && self.flags[idx] & COLLUSION != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_track_lifecycle() {
        let mut hot = HotPeers::default();
        hot.push(&PeerTags::compliant(), 0);
        let ww = PeerTags {
            whitewash_interval: Some(4),
            ..PeerTags::compliant()
        };
        hot.push(&ww, 3);
        assert_eq!(hot.len(), 2);
        assert!(hot.is_active(0) && hot.is_online(0));
        assert!(!hot.whitewash_online(0) && !hot.colluder_online(0));
        assert!(hot.whitewash_online(1));
        assert_eq!(hot.have_count(1), 3);
        hot.add_piece(1);
        assert_eq!(hot.have_count(1), 4);
        hot.set_offline(1, true);
        assert!(hot.is_active(1) && !hot.is_online(1) && !hot.whitewash_online(1));
        hot.set_offline(1, false);
        assert!(hot.is_online(1));
        hot.retire(0);
        assert!(!hot.is_active(0) && !hot.is_online(0));
    }

    #[test]
    fn obliged_bit_toggles_independently() {
        let mut hot = HotPeers::default();
        hot.push(&PeerTags::compliant(), 0);
        assert!(!hot.is_obliged(0));
        hot.set_obliged(0, true);
        assert!(hot.is_obliged(0) && hot.is_online(0));
        hot.set_offline(0, true);
        assert!(hot.is_obliged(0), "outage must not clear obligations");
        hot.set_obliged(0, false);
        assert!(!hot.is_obliged(0));
    }
}
