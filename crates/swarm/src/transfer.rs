//! In-flight transfer bookkeeping.
//!
//! Grants are byte-granular while pieces are discrete, so a transfer
//! accumulates bytes across grants (and rounds) until the piece length is
//! reached. One transfer is in flight per (uploader, downloader) pair at a
//! time, mirroring a single pipelined request.

use std::collections::HashMap;

use coop_incentives::{GrantReason, PeerId, ReciprocationCondition};

/// A partially transferred piece.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InFlight {
    /// The piece being moved.
    pub piece: u32,
    /// Full length of the piece in bytes.
    pub piece_len: u64,
    /// Bytes transferred so far.
    pub bytes_done: u64,
    /// Reciprocation condition attached when the transfer started (T-Chain
    /// encrypted delivery), if any.
    pub condition: Option<ReciprocationCondition>,
    /// Mechanism component that initiated the transfer.
    pub reason: GrantReason,
    /// Round of the most recent byte of progress (stall detection).
    pub last_progress_round: u64,
}

impl InFlight {
    /// Bytes still missing.
    pub fn remaining(&self) -> u64 {
        self.piece_len - self.bytes_done
    }
}

/// All in-flight transfers, keyed by (uploader, downloader), with a
/// per-uploader index so a peer can cheaply enumerate its outgoing
/// partials.
#[derive(Clone, Debug, Default)]
pub struct TransferTable {
    inner: HashMap<(PeerId, PeerId), InFlight>,
    by_uploader: HashMap<PeerId, std::collections::BTreeSet<PeerId>>,
}

impl TransferTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// The transfer currently in flight from `from` to `to`, if any.
    pub fn get(&self, from: PeerId, to: PeerId) -> Option<&InFlight> {
        self.inner.get(&(from, to))
    }

    /// Starts a transfer; replaces any previous entry for the pair.
    ///
    /// # Panics
    ///
    /// Panics if a transfer is already in flight for the pair (callers
    /// must finish or abort it first).
    pub fn start(&mut self, from: PeerId, to: PeerId, inflight: InFlight) {
        let prev = self.inner.insert((from, to), inflight);
        assert!(
            prev.is_none(),
            "transfer already in flight from {from} to {to}"
        );
        self.by_uploader.entry(from).or_default().insert(to);
    }

    /// The downloaders this uploader currently has partials toward, in id
    /// order (deterministic).
    pub fn targets_of(&self, from: PeerId) -> Vec<PeerId> {
        self.by_uploader
            .get(&from)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// All uploaders that currently have outgoing partials (unordered —
    /// callers wanting determinism must sort or treat the set as a set).
    pub fn uploaders(&self) -> impl Iterator<Item = PeerId> + '_ {
        self.by_uploader.keys().copied()
    }

    fn unindex(&mut self, from: PeerId, to: PeerId) {
        if let Some(set) = self.by_uploader.get_mut(&from) {
            set.remove(&to);
            if set.is_empty() {
                self.by_uploader.remove(&from);
            }
        }
    }

    /// Adds `bytes` of progress; returns the completed transfer when the
    /// piece finishes (and removes it from the table).
    ///
    /// # Panics
    ///
    /// Panics if no transfer is in flight for the pair or if `bytes`
    /// exceeds the remaining length.
    pub fn progress(&mut self, from: PeerId, to: PeerId, bytes: u64, round: u64) -> Option<InFlight> {
        let entry = self
            .inner
            .get_mut(&(from, to))
            .unwrap_or_else(|| panic!("no transfer in flight from {from} to {to}"));
        assert!(
            bytes <= entry.remaining(),
            "progress {bytes} exceeds remaining {}",
            entry.remaining()
        );
        entry.bytes_done += bytes;
        entry.last_progress_round = round;
        if entry.bytes_done == entry.piece_len {
            let done = self.inner.remove(&(from, to));
            self.unindex(from, to);
            done
        } else {
            None
        }
    }

    /// Removes and returns every transfer whose last progress is older
    /// than `before` (stalled requests a real client would re-issue).
    pub fn drain_stalled(&mut self, before: u64) -> Vec<((PeerId, PeerId), InFlight)> {
        let keys: Vec<(PeerId, PeerId)> = self
            .inner
            .iter()
            .filter(|(_, fl)| fl.last_progress_round < before)
            .map(|(&k, _)| k)
            .collect();
        keys.into_iter()
            .map(|k| (k, self.inner.remove(&k).expect("key just listed")))
            .collect()
    }

    /// Drops every transfer involving `peer` (departure/whitewash),
    /// returning the dropped entries as `((from, to), transfer)` pairs.
    pub fn drop_peer(&mut self, peer: PeerId) -> Vec<((PeerId, PeerId), InFlight)> {
        let keys: Vec<(PeerId, PeerId)> = self
            .inner
            .keys()
            .filter(|&&(f, t)| f == peer || t == peer)
            .copied()
            .collect();
        keys.into_iter()
            .map(|k| {
                self.unindex(k.0, k.1);
                (k, self.inner.remove(&k).expect("key just listed"))
            })
            .collect()
    }

    /// Iterates over all in-flight transfers.
    pub fn iter(&self) -> impl Iterator<Item = (&(PeerId, PeerId), &InFlight)> {
        self.inner.iter()
    }

    /// Number of in-flight transfers.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Returns true when nothing is in flight.
    #[allow(dead_code)] // API completeness alongside len(); exercised in tests
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> PeerId {
        PeerId::new(i)
    }

    fn flight(piece: u32, len: u64) -> InFlight {
        InFlight {
            piece,
            piece_len: len,
            bytes_done: 0,
            condition: None,
            reason: GrantReason::Altruism,
            last_progress_round: 0,
        }
    }

    #[test]
    fn accumulates_until_complete() {
        let mut t = TransferTable::new();
        assert!(t.is_empty());
        t.start(p(0), p(1), flight(7, 1000));
        assert!(t.progress(p(0), p(1), 400, 1).is_none());
        assert_eq!(t.get(p(0), p(1)).unwrap().bytes_done, 400);
        let done = t.progress(p(0), p(1), 600, 2).expect("complete");
        assert_eq!(done.piece, 7);
        assert!(t.get(p(0), p(1)).is_none());
    }

    #[test]
    #[should_panic(expected = "exceeds remaining")]
    fn overshoot_panics() {
        let mut t = TransferTable::new();
        t.start(p(0), p(1), flight(0, 100));
        t.progress(p(0), p(1), 101, 0);
    }

    #[test]
    #[should_panic(expected = "already in flight")]
    fn double_start_panics() {
        let mut t = TransferTable::new();
        t.start(p(0), p(1), flight(0, 100));
        t.start(p(0), p(1), flight(1, 100));
    }

    #[test]
    fn pairs_are_directional() {
        let mut t = TransferTable::new();
        t.start(p(0), p(1), flight(0, 100));
        t.start(p(1), p(0), flight(1, 100));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn targets_index_tracks_lifecycle() {
        let mut t = TransferTable::new();
        t.start(p(0), p(2), flight(0, 100));
        t.start(p(0), p(1), flight(1, 100));
        assert_eq!(t.targets_of(p(0)), vec![p(1), p(2)]);
        t.progress(p(0), p(1), 100, 0);
        assert_eq!(t.targets_of(p(0)), vec![p(2)]);
        t.drop_peer(p(2));
        assert!(t.targets_of(p(0)).is_empty());
    }

    #[test]
    fn drain_stalled_removes_old_transfers() {
        let mut t = TransferTable::new();
        t.start(p(0), p(1), flight(0, 100));
        t.start(p(2), p(3), flight(1, 100));
        t.progress(p(2), p(3), 10, 9); // fresh progress at round 9
        let stalled = t.drain_stalled(5);
        assert_eq!(stalled.len(), 1);
        assert_eq!(stalled[0].0, (p(0), p(1)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn drop_peer_removes_both_directions() {
        let mut t = TransferTable::new();
        t.start(p(0), p(1), flight(0, 100));
        t.start(p(2), p(0), flight(1, 100));
        t.start(p(2), p(3), flight(2, 100));
        let dropped = t.drop_peer(p(0));
        assert_eq!(dropped.len(), 2);
        assert_eq!(t.len(), 1);
        assert!(t.get(p(2), p(3)).is_some());
    }
}
