//! Per-peer simulator state.
//!
//! Piece possession is tracked in three synchronized bitfields:
//!
//! * `have` — usable pieces (count toward completion),
//! * `locked` — T-Chain encrypted pieces awaiting reciprocation
//!   (forwardable but not usable),
//! * derived caches `offer = have ∪ locked` and
//!   `absent = ¬(have ∪ locked)` kept incrementally so the simulator's
//!   interest tests are word-level bit operations.
//!
//! All transitions go through the `acquire_usable` / `lock_piece` /
//! `unlock_piece` / `discard_locked` methods, which maintain the caches.

use std::collections::{BTreeSet, HashSet};

use coop_des::SimTime;
use coop_incentives::ledger::{ContributionLedger, DeficitLedger};
use coop_incentives::{Mechanism, Obligation, PeerId};
use coop_piece::Bitfield;

use crate::config::PeerTags;

/// Why a peer is no longer active.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Departure {
    /// Finished the download and left.
    Completed(SimTime),
    /// Retired this identity via whitewashing (a successor id exists).
    Whitewashed(SimTime),
    /// Removed by the fault schedule (churn departure or seeder failure).
    Churned(SimTime),
}

/// Mutable state of one peer identity.
///
/// `Clone` deep-copies everything including the boxed mechanism (via
/// [`Mechanism::clone_box`]) — the substrate of mid-run checkpointing.
#[derive(Clone)]
pub struct PeerState {
    /// This peer's id.
    pub id: PeerId,
    /// Upload capacity in bytes/second.
    pub capacity_bps: f64,
    /// Behavior flags.
    pub tags: PeerTags,
    /// Arrival time of this identity.
    pub arrival: SimTime,
    /// The round in which this identity arrived.
    pub arrival_round: u64,
    have: Bitfield,
    locked: Bitfield,
    offer: Bitfield,
    absent: Bitfield,
    /// Pieces currently being downloaded (any source), to avoid duplicate
    /// fetches.
    pub inflight: HashSet<u32>,
    /// How many of the in-flight transfers toward this peer are
    /// conditional (will become obligations on delivery).
    pub inflight_conditional: usize,
    /// Contribution accounting.
    pub ledger: ContributionLedger,
    /// FairTorrent deficits.
    pub deficits: DeficitLedger,
    /// Outstanding obligations (pieces this peer holds locked).
    pub obligations: Vec<Obligation>,
    /// The allocation policy. Taken out during allocation to satisfy the
    /// borrow checker; always restored before the round ends.
    pub mechanism: Option<Box<dyn Mechanism>>,
    /// Connected neighbors (ordered for determinism).
    pub neighbors: BTreeSet<PeerId>,
    /// When this peer got its first piece (locked or usable), if ever.
    pub bootstrap_time: Option<SimTime>,
    /// Set when the peer departs.
    pub departure: Option<Departure>,
    /// True while the fault schedule holds this peer in an outage: the
    /// peer keeps its bitfield and neighbors but neither uploads nor
    /// downloads until the matching outage-end round.
    pub offline: bool,
    /// Usable bytes received (plain deliveries plus unlocks).
    pub bytes_received_usable: u64,
    /// Raw bytes received (including still-locked and later-expired
    /// pieces).
    pub bytes_received_raw: u64,
    /// Bytes uploaded (completed transfers only).
    pub bytes_sent: u64,
    /// Bytes' worth of pieces this identity was born with (whitewash
    /// successors inherit their predecessor's pieces).
    pub bytes_inherited: u64,
}

impl PeerState {
    /// Creates a fresh peer with no pieces.
    pub fn new(
        id: PeerId,
        capacity_bps: f64,
        tags: PeerTags,
        arrival: SimTime,
        arrival_round: u64,
        num_pieces: u32,
        mechanism: Box<dyn Mechanism>,
    ) -> Self {
        PeerState {
            id,
            capacity_bps,
            tags,
            arrival,
            arrival_round,
            have: Bitfield::new(num_pieces),
            locked: Bitfield::new(num_pieces),
            offer: Bitfield::new(num_pieces),
            absent: Bitfield::full(num_pieces),
            inflight: HashSet::new(),
            inflight_conditional: 0,
            ledger: ContributionLedger::new(),
            deficits: DeficitLedger::new(),
            obligations: Vec::new(),
            mechanism: Some(mechanism),
            neighbors: BTreeSet::new(),
            bootstrap_time: None,
            departure: None,
            offline: false,
            bytes_received_usable: 0,
            bytes_received_raw: 0,
            bytes_sent: 0,
            bytes_inherited: 0,
        }
    }

    /// Is this identity still participating?
    pub fn is_active(&self) -> bool {
        self.departure.is_none()
    }

    /// Usable pieces.
    pub fn have(&self) -> &Bitfield {
        &self.have
    }

    /// Locked (encrypted) pieces.
    pub fn locked(&self) -> &Bitfield {
        &self.locked
    }

    /// Pieces this peer can offer for upload (`have ∪ locked`).
    pub fn offer(&self) -> &Bitfield {
        &self.offer
    }

    /// Pieces this peer neither holds nor holds locked.
    pub fn absent(&self) -> &Bitfield {
        &self.absent
    }

    /// Does this peer need piece `p`? (Absent and not already being
    /// fetched.)
    pub fn needs_piece(&self, p: u32) -> bool {
        self.absent.get(p) && !self.inflight.contains(&p)
    }

    /// The bitfield of pieces this peer still wants (absent minus
    /// in-flight).
    pub fn wanted(&self) -> Bitfield {
        let mut bf = self.absent.clone();
        for &p in &self.inflight {
            bf.unset(p);
        }
        bf
    }

    /// Marks piece `p` usable (plain delivery).
    pub fn acquire_usable(&mut self, p: u32) {
        self.have.set(p);
        self.locked.unset(p);
        self.offer.set(p);
        self.absent.unset(p);
    }

    /// Marks piece `p` locked (encrypted T-Chain delivery).
    pub fn lock_piece(&mut self, p: u32) {
        debug_assert!(!self.have.get(p), "locking an already-usable piece");
        self.locked.set(p);
        self.offer.set(p);
        self.absent.unset(p);
    }

    /// Promotes a locked piece to usable (key released). Returns false if
    /// the piece was not locked (e.g. already discarded).
    pub fn unlock_piece(&mut self, p: u32) -> bool {
        if !self.locked.get(p) {
            return false;
        }
        self.locked.unset(p);
        self.have.set(p);
        true
    }

    /// Discards an expired locked piece; it becomes absent (and thus
    /// re-downloadable). Returns false if the piece was not locked.
    pub fn discard_locked(&mut self, p: u32) -> bool {
        if !self.locked.get(p) {
            return false;
        }
        self.locked.unset(p);
        if !self.have.get(p) {
            self.offer.unset(p);
            self.absent.set(p);
        }
        true
    }

    /// True once every piece is usable.
    pub fn is_complete(&self) -> bool {
        self.have.is_complete()
    }

    /// Number of usable pieces.
    pub fn piece_count(&self) -> u32 {
        self.have.count_ones()
    }

    /// Marks the first-piece bootstrap instant if not already recorded.
    pub fn record_bootstrap(&mut self, now: SimTime) {
        if self.bootstrap_time.is_none() {
            self.bootstrap_time = Some(now);
        }
    }

    /// Folds each possession bitfield into its interval-run representation
    /// where that is strictly smaller (departed identities are typically
    /// complete, so `have`/`offer` collapse to a single run and
    /// `locked`/`absent` to none). Observationally a no-op: every
    /// [`Bitfield`] query answers identically in either representation.
    pub(crate) fn compress_storage(&mut self) {
        self.have.compress();
        self.locked.compress();
        self.offer.compress();
        self.absent.compress();
    }
}

impl std::fmt::Debug for PeerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PeerState")
            .field("id", &self.id)
            .field("capacity_bps", &self.capacity_bps)
            .field("pieces", &self.have.count_ones())
            .field("locked", &self.locked.count_ones())
            .field("active", &self.is_active())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coop_incentives::{build_mechanism, MechanismKind, MechanismParams};

    fn peer(num_pieces: u32) -> PeerState {
        PeerState::new(
            PeerId::new(0),
            1000.0,
            PeerTags::compliant(),
            SimTime::ZERO,
            0,
            num_pieces,
            build_mechanism(MechanismKind::Altruism, MechanismParams::default()),
        )
    }

    fn invariants(p: &PeerState) {
        for i in 0..p.have().len() {
            let have = p.have().get(i);
            let locked = p.locked().get(i);
            assert!(!(have && locked), "piece {i} both usable and locked");
            assert_eq!(p.offer().get(i), have || locked, "offer cache at {i}");
            assert_eq!(p.absent().get(i), !(have || locked), "absent cache at {i}");
        }
    }

    #[test]
    fn fresh_peer_needs_everything() {
        let p = peer(8);
        assert!(p.is_active());
        assert!(!p.is_complete());
        assert_eq!(p.piece_count(), 0);
        for i in 0..8 {
            assert!(p.needs_piece(i));
        }
        assert_eq!(p.wanted().count_ones(), 8);
        invariants(&p);
    }

    #[test]
    fn lock_then_unlock_flow() {
        let mut p = peer(8);
        p.lock_piece(3);
        invariants(&p);
        assert!(!p.needs_piece(3));
        assert!(p.offer().get(3));
        assert_eq!(p.piece_count(), 0);
        assert!(p.unlock_piece(3));
        invariants(&p);
        assert_eq!(p.piece_count(), 1);
        assert!(!p.unlock_piece(3), "double unlock is a no-op");
    }

    #[test]
    fn lock_then_discard_flow() {
        let mut p = peer(8);
        p.lock_piece(2);
        assert!(p.discard_locked(2));
        invariants(&p);
        assert!(p.needs_piece(2), "discarded piece becomes wanted again");
        assert!(!p.discard_locked(2));
    }

    #[test]
    fn discard_after_unlock_keeps_piece() {
        let mut p = peer(8);
        p.lock_piece(1);
        p.unlock_piece(1);
        assert!(!p.discard_locked(1));
        assert!(p.have().get(1));
        invariants(&p);
    }

    #[test]
    fn inflight_pieces_not_requested_twice() {
        let mut p = peer(8);
        p.inflight.insert(2);
        assert!(!p.needs_piece(2));
        assert!(!p.wanted().get(2));
    }

    #[test]
    fn completion_requires_all_usable() {
        let mut p = peer(4);
        for i in 0..4 {
            p.lock_piece(i);
        }
        assert!(!p.is_complete(), "locked pieces do not complete a file");
        for i in 0..4 {
            p.unlock_piece(i);
        }
        assert!(p.is_complete());
        invariants(&p);
    }

    #[test]
    fn bootstrap_recorded_once() {
        let mut p = peer(4);
        p.record_bootstrap(SimTime::from_secs(5));
        p.record_bootstrap(SimTime::from_secs(9));
        assert_eq!(p.bootstrap_time, Some(SimTime::from_secs(5)));
    }
}
