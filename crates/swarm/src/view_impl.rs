//! The production [`SwarmView`] handed to mechanisms during allocation.

use coop_incentives::ledger::{ContributionLedger, DeficitLedger};
use coop_incentives::{Obligation, PeerId, SwarmView};

use crate::sim::Simulation;

/// A read-only window onto the simulation, scoped to one allocating peer.
pub struct SimView<'a> {
    sim: &'a Simulation,
    me: PeerId,
}

impl<'a> SimView<'a> {
    pub(crate) fn new(sim: &'a Simulation, me: PeerId) -> Self {
        SimView { sim, me }
    }

    fn my_state(&self) -> &crate::peer::PeerState {
        self.sim.peer(self.me)
    }
}

impl SwarmView for SimView<'_> {
    fn me(&self) -> PeerId {
        self.me
    }

    fn round(&self) -> u64 {
        self.sim.round()
    }

    fn neighbors(&self) -> &[PeerId] {
        // Precomputed once per phase (allocation / end-of-round); see
        // `Simulation::refresh_candidates`.
        self.sim.round_candidates(self.me)
    }

    fn peer_needs_from_me(&self, peer: PeerId) -> bool {
        self.sim.needs(peer, self.me)
    }

    fn i_need_from(&self, peer: PeerId) -> bool {
        self.sim.needs(self.me, peer)
    }

    fn peer_needs_from(&self, who: PeerId, from: PeerId) -> bool {
        self.sim.needs(who, from)
    }

    fn piece_count(&self, peer: PeerId) -> u32 {
        if self.sim.is_active(peer) {
            self.sim.peer(peer).piece_count()
        } else {
            0
        }
    }

    fn reputation(&self, peer: PeerId) -> f64 {
        self.sim.reputation_of(peer)
    }

    fn ledger(&self) -> &ContributionLedger {
        &self.my_state().ledger
    }

    fn deficits(&self) -> &DeficitLedger {
        &self.my_state().deficits
    }

    fn obligations(&self) -> &[Obligation] {
        &self.my_state().obligations
    }

    fn uploading_to(&self, peer: PeerId) -> bool {
        self.sim.has_transfer(self.me, peer)
    }

    fn obligation_count(&self, peer: PeerId) -> usize {
        if self.sim.is_active(peer) {
            // Conditional in-flight pieces count toward the backlog: they
            // become obligations on delivery, and uploaders that ignore
            // them overfill slow receivers faster than they can
            // reciprocate.
            let p = self.sim.peer(peer);
            p.obligations.len() + p.inflight_conditional
        } else {
            0
        }
    }

    fn piece_size(&self) -> u64 {
        self.sim.config().file.piece_size()
    }
}
