//! Simulation results and derived statistics.

use coop_incentives::metrics::{Cdf, TimeSeries};
use coop_incentives::PeerId;

/// The final record of one peer identity.
#[derive(Clone, Debug, PartialEq)]
pub struct PeerRecord {
    /// The identity.
    pub id: PeerId,
    /// Upload capacity in bytes/second.
    pub capacity_bps: f64,
    /// Whether the peer was compliant (free-riders are not).
    pub compliant: bool,
    /// Arrival time in seconds.
    pub arrival_s: f64,
    /// Seconds from arrival to first piece, if bootstrapped.
    pub bootstrap_s: Option<f64>,
    /// Seconds from arrival to download completion, if completed.
    pub completion_s: Option<f64>,
    /// Bytes uploaded (completed transfers).
    pub bytes_sent: u64,
    /// Usable bytes received.
    pub bytes_received_usable: u64,
    /// Raw bytes received (including locked/expired T-Chain pieces).
    pub bytes_received_raw: u64,
    /// Bytes' worth of pieces inherited at identity creation (nonzero only
    /// for whitewash successors).
    pub bytes_inherited: u64,
}

/// Swarm-wide byte totals.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Totals {
    /// Bytes uploaded by compliant peers.
    pub uploaded_compliant: u64,
    /// Bytes uploaded by free-riders (usually 0).
    pub uploaded_freeriders: u64,
    /// Bytes uploaded by the seeder.
    pub uploaded_seeder: u64,
    /// Usable bytes received by free-riders.
    pub freerider_received_usable: u64,
    /// Raw bytes received by free-riders.
    pub freerider_received_raw: u64,
    /// Usable bytes free-riders received from *peers* (seeder bytes
    /// excluded) — the numerator of the paper's susceptibility metric.
    pub freerider_received_from_peers: u64,
    /// Bytes lost in transfers aborted by the stall timeout or peer
    /// departures (bandwidth spent on pieces that never completed).
    pub aborted_bytes: u64,
    /// Bytes moved per mechanism component, indexed by
    /// `GrantReason::index()` — the empirical counterpart of Table III's
    /// bandwidth attribution.
    pub bytes_by_reason: [u64; 9],
    /// Bytes of completed piece transfers lost to fault-injected link
    /// loss (sender paid for them; the receiver never got the piece).
    pub fault_dropped_bytes: u64,
}

impl Totals {
    /// All upload bandwidth spent (peers + seeder).
    pub fn uploaded_total(&self) -> u64 {
        self.uploaded_compliant + self.uploaded_freeriders + self.uploaded_seeder
    }
}

/// Lifetime tallies of the consensus-reputation layer, present when the
/// population ran [`coop_incentives::MechanismKind::ConsensusReputation`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ConsensusSummary {
    /// Individual reports considered (two per transfer pair).
    pub reports: u64,
    /// Report pairs that disagreed (denied, voided, or phantom).
    pub disputes: u64,
    /// Temporary bans issued.
    pub bans_temp: u64,
    /// Permanent bans issued.
    pub bans_perm: u64,
    /// Bans (either kind) that hit a compliant peer — friendly fire.
    pub bans_compliant: u64,
    /// Bans (either kind) that hit a non-compliant peer.
    pub bans_noncompliant: u64,
    /// The highest strike level any peer ever reached.
    pub max_strikes: f64,
}

/// The outcome of one simulation run.
///
/// `PartialEq` compares every recorded number bit-for-bit; the batch
/// executor's determinism tests rely on this to prove that parallel and
/// sequential execution produce identical results.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SimResult {
    /// Rounds actually executed.
    pub rounds_run: u64,
    /// Seconds of simulated time.
    pub sim_seconds: f64,
    /// Per-identity records (departed identities included).
    pub peers: Vec<PeerRecord>,
    /// Average fairness `(Σ u_i/d_i)/N` over active compliant peers,
    /// sampled over time (Fig. 4b / 5c / 6c).
    pub fairness_avg: TimeSeries,
    /// The paper's `F` statistic over active compliant peers, sampled over
    /// time.
    pub fairness_stat: TimeSeries,
    /// Fraction of compliant peers bootstrapped, over time (Fig. 4c).
    pub bootstrapped_frac: TimeSeries,
    /// Fraction of compliant peers completed, over time (Fig. 4a's CDF
    /// read along time).
    pub completed_frac: TimeSeries,
    /// Cumulative susceptibility (free-rider share of uploaded bytes) over
    /// time (Fig. 5a / 6a).
    pub susceptibility: TimeSeries,
    /// Normalized piece-availability entropy over time (1 = perfectly
    /// even replication; the diversity rarest-first selection maintains).
    pub diversity: TimeSeries,
    /// Byte totals.
    pub totals: Totals,
    /// True when the run ended because the swarm became unsatisfiable —
    /// some active peer still wants a piece no online peer (or seeder)
    /// holds, and no bytes can ever move again. Only fault schedules can
    /// cause this (the fault-free seeder offers every piece forever).
    pub stalled: bool,
    /// Consensus-reputation tallies; `None` unless the population ran the
    /// consensus mechanism.
    pub consensus: Option<ConsensusSummary>,
}

impl SimResult {
    /// Records of compliant peers only.
    pub fn compliant(&self) -> impl Iterator<Item = &PeerRecord> {
        self.peers.iter().filter(|p| p.compliant)
    }

    /// Records of free-riders only.
    pub fn freeriders(&self) -> impl Iterator<Item = &PeerRecord> {
        self.peers.iter().filter(|p| !p.compliant)
    }

    /// Number of compliant peers that completed the download.
    pub fn completed_count(&self) -> usize {
        self.compliant()
            .filter(|p| p.completion_s.is_some())
            .count()
    }

    /// Fraction of compliant peers that completed.
    pub fn completed_fraction(&self) -> f64 {
        let total = self.compliant().count();
        if total == 0 {
            0.0
        } else {
            self.completed_count() as f64 / total as f64
        }
    }

    /// CDF of compliant completion times in seconds (Fig. 4a / 5b / 6b).
    pub fn completion_cdf(&self) -> Cdf {
        Cdf::from_samples(self.compliant().filter_map(|p| p.completion_s).collect())
    }

    /// Mean compliant completion time in seconds (completed peers only).
    pub fn mean_completion_time(&self) -> Option<f64> {
        self.completion_cdf().mean()
    }

    /// CDF of compliant bootstrap times in seconds (Fig. 4c).
    pub fn bootstrap_cdf(&self) -> Cdf {
        Cdf::from_samples(self.compliant().filter_map(|p| p.bootstrap_s).collect())
    }

    /// Mean compliant bootstrap time in seconds.
    pub fn mean_bootstrap_time(&self) -> Option<f64> {
        self.bootstrap_cdf().mean()
    }

    /// Fraction of compliant peers bootstrapped by the end of the run.
    pub fn bootstrapped_fraction(&self) -> f64 {
        let total = self.compliant().count();
        if total == 0 {
            0.0
        } else {
            self.compliant().filter(|p| p.bootstrap_s.is_some()).count() as f64 / total as f64
        }
    }

    /// Final susceptibility (Section V): the fraction of *peer* upload
    /// bandwidth usably received by free-riders. Seeder bytes are excluded
    /// on both sides — the seeder serves everyone unconditionally and says
    /// nothing about the incentive mechanism under attack.
    pub fn final_susceptibility(&self) -> f64 {
        coop_incentives::metrics::susceptibility(
            self.totals.freerider_received_from_peers,
            self.totals.uploaded_compliant + self.totals.uploaded_freeriders,
        )
    }

    /// Peak susceptibility over the run — the largest share of peer upload
    /// bandwidth free-riders held at any sample point. The cumulative
    /// [`SimResult::final_susceptibility`] saturates once free-riders
    /// finish the file and stop absorbing; the peak reflects the bandwidth
    /// share the paper's Figs. 5a/6a report.
    pub fn peak_susceptibility(&self) -> f64 {
        self.susceptibility
            .points()
            .iter()
            .map(|&(_, v)| v)
            .fold(0.0, f64::max)
    }

    /// Final average fairness over compliant peers with nonzero downloads:
    /// `(Σ u_i/d_i)/N` computed from cumulative totals.
    pub fn final_avg_fairness(&self) -> Option<f64> {
        let pairs: Vec<(f64, f64)> = self
            .compliant()
            .map(|p| (p.bytes_sent as f64, p.bytes_received_usable as f64))
            .collect();
        coop_incentives::metrics::avg_fairness_ratio(&pairs)
    }

    /// Fraction of peer-moved bytes attributed to `reason` (seeder bytes
    /// excluded from the denominator when the reason is not `Seeding`).
    pub fn reason_fraction(&self, reason: coop_incentives::GrantReason) -> f64 {
        let total: u64 = self
            .totals
            .bytes_by_reason
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != coop_incentives::GrantReason::Seeding.index())
            .map(|(_, &b)| b)
            .sum();
        if total == 0 {
            0.0
        } else {
            self.totals.bytes_by_reason[reason.index()] as f64 / total as f64
        }
    }

    /// Final `F` statistic over compliant peers (skips zero-rate peers).
    pub fn final_fairness_stat(&self) -> f64 {
        let pairs: Vec<(f64, f64)> = self
            .compliant()
            .map(|p| (p.bytes_sent as f64, p.bytes_received_usable as f64))
            .collect();
        coop_incentives::metrics::fairness_stat(&pairs).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(compliant: bool, completion: Option<f64>, sent: u64, recv: u64) -> PeerRecord {
        PeerRecord {
            id: PeerId::new(0),
            capacity_bps: 1000.0,
            compliant,
            arrival_s: 0.0,
            bootstrap_s: completion.map(|_| 1.0),
            completion_s: completion,
            bytes_sent: sent,
            bytes_received_usable: recv,
            bytes_received_raw: recv,
            bytes_inherited: 0,
        }
    }

    #[test]
    fn completion_counts_exclude_freeriders() {
        let r = SimResult {
            peers: vec![
                record(true, Some(10.0), 100, 100),
                record(true, None, 50, 60),
                record(false, Some(5.0), 0, 40),
            ],
            ..SimResult::default()
        };
        assert_eq!(r.completed_count(), 1);
        assert!((r.completed_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(r.freeriders().count(), 1);
    }

    #[test]
    fn susceptibility_uses_totals() {
        let r = SimResult {
            totals: Totals {
                uploaded_compliant: 900,
                uploaded_freeriders: 0,
                uploaded_seeder: 100,
                freerider_received_usable: 250,
                freerider_received_raw: 400,
                freerider_received_from_peers: 225,
                aborted_bytes: 0,
                bytes_by_reason: [0; 9],
                fault_dropped_bytes: 0,
            },
            ..SimResult::default()
        };
        assert!((r.final_susceptibility() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn fairness_from_cumulative_totals() {
        let r = SimResult {
            peers: vec![
                record(true, None, 100, 100),
                record(true, None, 300, 300),
            ],
            ..SimResult::default()
        };
        assert!((r.final_avg_fairness().unwrap() - 1.0).abs() < 1e-12);
        assert!(r.final_fairness_stat().abs() < 1e-12);
    }

    #[test]
    fn empty_result_is_sane() {
        let r = SimResult::default();
        assert_eq!(r.completed_fraction(), 0.0);
        assert_eq!(r.bootstrapped_fraction(), 0.0);
        assert_eq!(r.final_susceptibility(), 0.0);
        assert_eq!(r.final_avg_fairness(), None);
        assert!(r.mean_completion_time().is_none());
    }
}
