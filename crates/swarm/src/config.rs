//! Simulation configuration and population construction.

use std::fmt;

use coop_des::rng::SeedTree;
use coop_des::{Duration, SimTime};
use coop_incentives::analysis::capacity::CapacityClassMix;
use coop_incentives::{build_mechanism, Mechanism, MechanismKind, MechanismParams};
use coop_piece::FileSpec;

use rand::Rng;

/// Which piece-selection strategy peers (and the seeder) use when starting
/// a transfer. The paper's analysis assumes local-rarest-first ("as
/// achieved in local-rarest-first piece selection", Section IV-A2); the
/// alternatives exist for the sensitivity ablation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum PieceStrategy {
    /// Local-rarest-first (the default and the paper's assumption).
    #[default]
    RarestFirst,
    /// Uniform random among needed pieces.
    Random,
    /// Lowest-index first (streaming-style; worst for piece diversity).
    Sequential,
}

/// Builds a fresh [`Mechanism`] for one peer. Factories are invoked once at
/// the peer's arrival (and again after a whitewash rejoin).
pub type MechanismFactory = Box<dyn Fn() -> Box<dyn Mechanism> + Send>;

/// Substrate-level behavior flags for one peer, composing the paper's
/// attack scenarios (Section V-B2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PeerTags {
    /// Compliant peers follow their mechanism; non-compliant peers are the
    /// free-riders whose received bytes define susceptibility.
    pub compliant: bool,
    /// Large-view exploit: connect to every peer in the swarm instead of a
    /// bounded random neighbor set.
    pub large_view: bool,
    /// Collusion ring id. Ring members auto-confirm each other's T-Chain
    /// reciprocations (false receipt reports) and inject false praise into
    /// the reputation table for each other.
    pub collusion_ring: Option<u16>,
    /// Whitewashing: retire this identity and rejoin under a fresh one
    /// every `interval` rounds, escaping accumulated deficits.
    pub whitewash_interval: Option<u64>,
    /// Bytes per round of fictitious upload credit each ring member
    /// reports for this peer (reputation false praise).
    pub fake_praise_bytes: u64,
    /// Threshold-aware defector against the consensus-reputation layer:
    /// denies received-byte acknowledgements, but only within the strike
    /// budget that keeps it strictly below the observed ban threshold.
    pub underreport: bool,
    /// Sybil report stuffer: fabricates matched consensus report pairs
    /// with its collusion-ring mates and phantom claims against honest
    /// bystanders. Requires `collusion_ring` to take effect.
    pub stuff_reports: bool,
    /// Ban-evading whitewasher: rotates to a fresh identity once
    /// permanently banned, or one strike short of a permanent repeat
    /// crossing after a served temporary ban.
    pub ban_evade: bool,
}

impl Default for PeerTags {
    fn default() -> Self {
        PeerTags {
            compliant: true,
            large_view: false,
            collusion_ring: None,
            whitewash_interval: None,
            fake_praise_bytes: 0,
            underreport: false,
            stuff_reports: false,
            ban_evade: false,
        }
    }
}

impl PeerTags {
    /// Tags for an honest peer.
    pub fn compliant() -> Self {
        Self::default()
    }
}

/// The specification of one arriving peer.
pub struct PeerSpec {
    /// Upload capacity in bytes per second.
    pub capacity_bps: f64,
    /// Arrival time.
    pub arrival: SimTime,
    /// Builds the peer's allocation mechanism.
    pub mechanism: MechanismFactory,
    /// Behavior flags.
    pub tags: PeerTags,
}

impl fmt::Debug for PeerSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PeerSpec")
            .field("capacity_bps", &self.capacity_bps)
            .field("arrival", &self.arrival)
            .field("tags", &self.tags)
            .finish_non_exhaustive()
    }
}

impl PeerSpec {
    /// A compliant peer running the standard implementation of `kind`.
    pub fn standard(
        capacity_bps: f64,
        arrival: SimTime,
        kind: MechanismKind,
        params: MechanismParams,
    ) -> Self {
        PeerSpec {
            capacity_bps,
            arrival,
            mechanism: Box::new(move || build_mechanism(kind, params)),
            tags: PeerTags::compliant(),
        }
    }
}

/// Full simulator configuration (Section V-A's setup, parameterized).
#[derive(Clone, Debug, PartialEq)]
pub struct SwarmConfig {
    /// The file being distributed.
    pub file: FileSpec,
    /// Timeslot length.
    pub round: Duration,
    /// Root random seed; identical seeds yield identical runs.
    pub seed: u64,
    /// Seeder upload capacity in bytes per second.
    pub seeder_bps: f64,
    /// Target neighbor-set size for compliant peers.
    pub neighbor_degree: usize,
    /// Shared mechanism parameters (`α_BT`, `n_BT`, `α_R`, T-Chain TTL).
    pub mechanism_params: MechanismParams,
    /// Hard stop after this many rounds.
    pub max_rounds: u64,
    /// Metric sampling period in rounds.
    pub sample_every: u64,
    /// Abort a transfer after this many rounds without progress (the
    /// receiver re-requests the piece elsewhere, like a real client's
    /// request timeout).
    pub stall_timeout_rounds: u64,
    /// Piece-selection strategy (rarest-first unless overridden for the
    /// sensitivity ablation).
    pub piece_strategy: PieceStrategy,
    /// Use EigenTrust-weighted reputation scores instead of raw claimed
    /// upload totals (the false-praise defense of the paper's footnote 6).
    pub trusted_reputation: bool,
    /// Number of initially-arrived peers treated as EigenTrust's
    /// pre-trusted set when `trusted_reputation` is on (the operator's own
    /// seed nodes).
    pub pretrusted_count: usize,
}

impl SwarmConfig {
    /// The scaled default used by tests and quick experiment runs:
    /// 8 MiB file in 64 KiB pieces, 1-second rounds.
    pub fn scaled_default() -> Self {
        SwarmConfig {
            file: FileSpec::new(8 * 1024 * 1024, 64 * 1024),
            round: Duration::from_secs(1),
            seed: 42,
            seeder_bps: 256_000.0,
            neighbor_degree: 30,
            mechanism_params: MechanismParams::default(),
            max_rounds: 1200,
            sample_every: 5,
            stall_timeout_rounds: 8,
            piece_strategy: PieceStrategy::default(),
            trusted_reputation: false,
            pretrusted_count: 5,
        }
    }

    /// The paper-scale setup: 128 MB file in 256 KiB pieces, 1000-user
    /// flash crowd (population built separately), 1-second rounds.
    pub fn paper_scale() -> Self {
        SwarmConfig {
            file: FileSpec::new(128 * 1024 * 1024, 256 * 1024),
            round: Duration::from_secs(1),
            seed: 42,
            seeder_bps: 1_024_000.0,
            neighbor_degree: 50,
            mechanism_params: MechanismParams::default(),
            max_rounds: 12_000,
            sample_every: 10,
            stall_timeout_rounds: 8,
            piece_strategy: PieceStrategy::default(),
            trusted_reputation: false,
            pretrusted_count: 5,
        }
    }

    /// A miniature configuration for unit tests and doc examples:
    /// 32 pieces of 4 KiB, fast rounds, generous seeder.
    pub fn tiny_test() -> Self {
        SwarmConfig {
            file: FileSpec::new(128 * 1024, 4 * 1024),
            round: Duration::from_secs(1),
            seed: 1,
            seeder_bps: 16_000.0,
            neighbor_degree: 8,
            mechanism_params: MechanismParams::default(),
            max_rounds: 600,
            sample_every: 2,
            stall_timeout_rounds: 8,
            piece_strategy: PieceStrategy::default(),
            trusted_reputation: false,
            pretrusted_count: 5,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first invalid field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.seeder_bps < 0.0 || !self.seeder_bps.is_finite() {
            return Err(ConfigError::new("seeder_bps must be finite and nonnegative"));
        }
        if self.neighbor_degree == 0 {
            return Err(ConfigError::new("neighbor_degree must be positive"));
        }
        if self.max_rounds == 0 {
            return Err(ConfigError::new("max_rounds must be positive"));
        }
        if self.sample_every == 0 {
            return Err(ConfigError::new("sample_every must be positive"));
        }
        if self.stall_timeout_rounds == 0 {
            return Err(ConfigError::new("stall_timeout_rounds must be positive"));
        }
        self.mechanism_params
            .validate()
            .map_err(|e| ConfigError::new(format!("mechanism params: {e}")))?;
        Ok(())
    }

    /// Bytes of upload budget per round for a peer of the given capacity.
    pub fn bytes_per_round(&self, capacity_bps: f64) -> u64 {
        (capacity_bps * self.round.as_secs_f64()).round() as u64
    }
}

/// An invalid [`SwarmConfig`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        ConfigError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid swarm config: {}", self.message)
    }
}

impl std::error::Error for ConfigError {}

/// Builds the paper's flash-crowd population: `n` compliant peers running
/// `kind`, arriving uniformly within the first 10 seconds, with capacities
/// drawn from the default class mix.
pub fn flash_crowd(
    config: &SwarmConfig,
    n: usize,
    kind: MechanismKind,
    seed: u64,
) -> Vec<PeerSpec> {
    flash_crowd_with(
        config,
        n,
        kind,
        seed,
        &CapacityClassMix::paper_default(),
        Duration::from_secs(10),
    )
}

/// Builds a population whose arrivals follow a Poisson process with the
/// given mean inter-arrival time — the gentler alternative to the paper's
/// flash crowd ("while flash crowds are an extreme scenario…",
/// Section IV-B footnote). Capacities come from `mix`; all peers run
/// `kind` compliantly.
pub fn staggered_arrivals(
    config: &SwarmConfig,
    n: usize,
    kind: MechanismKind,
    seed: u64,
    mix: &CapacityClassMix,
    mean_interarrival: Duration,
) -> Vec<PeerSpec> {
    let tree = SeedTree::new(seed);
    let mut rng = tree.rng(0x90155);
    let lambda_ms = mean_interarrival.as_millis().max(1) as f64;
    let mut t_ms = 0.0f64;
    (0..n)
        .map(|_| {
            t_ms += coop_des::rng::exponential(&mut rng, lambda_ms);
            let capacity = mix.sample_one(&mut rng);
            PeerSpec::standard(
                capacity,
                SimTime::from_millis(t_ms as u64),
                kind,
                config.mechanism_params,
            )
        })
        .collect()
}

/// [`flash_crowd`] with an explicit capacity mix and arrival window.
pub fn flash_crowd_with(
    config: &SwarmConfig,
    n: usize,
    kind: MechanismKind,
    seed: u64,
    mix: &CapacityClassMix,
    window: Duration,
) -> Vec<PeerSpec> {
    let tree = SeedTree::new(seed);
    let mut rng = tree.rng(0xF1A5);
    (0..n)
        .map(|_| {
            let capacity = mix.sample_one(&mut rng);
            let at = SimTime::from_millis(rng.gen_range(0..window.as_millis().max(1)));
            PeerSpec::standard(capacity, at, kind, config.mechanism_params)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_configs_validate() {
        SwarmConfig::scaled_default().validate().unwrap();
        SwarmConfig::paper_scale().validate().unwrap();
        SwarmConfig::tiny_test().validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_fields() {
        let mut c = SwarmConfig::tiny_test();
        c.neighbor_degree = 0;
        assert!(c.validate().is_err());
        c = SwarmConfig::tiny_test();
        c.seeder_bps = f64::NAN;
        assert!(c.validate().is_err());
        c = SwarmConfig::tiny_test();
        c.mechanism_params.alpha_bt = 7.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn bytes_per_round_scales_with_round_length() {
        let mut c = SwarmConfig::tiny_test();
        c.round = Duration::from_secs(2);
        assert_eq!(c.bytes_per_round(1000.0), 2000);
        c.round = Duration::from_millis(500);
        assert_eq!(c.bytes_per_round(1000.0), 500);
    }

    #[test]
    fn flash_crowd_arrivals_within_window() {
        let c = SwarmConfig::tiny_test();
        let pop = flash_crowd(&c, 50, MechanismKind::Altruism, 3);
        assert_eq!(pop.len(), 50);
        for spec in &pop {
            assert!(spec.arrival < SimTime::from_secs(10));
            assert!(spec.capacity_bps > 0.0);
            assert!(spec.tags.compliant);
        }
    }

    #[test]
    fn flash_crowd_is_deterministic_in_seed() {
        let c = SwarmConfig::tiny_test();
        let a = flash_crowd(&c, 20, MechanismKind::TChain, 9);
        let b = flash_crowd(&c, 20, MechanismKind::TChain, 9);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.capacity_bps, y.capacity_bps);
            assert_eq!(x.arrival, y.arrival);
        }
    }

    #[test]
    fn staggered_arrivals_are_increasing_and_poisson_ish() {
        let c = SwarmConfig::tiny_test();
        let mix = CapacityClassMix::paper_default();
        let pop = staggered_arrivals(&c, 200, MechanismKind::TChain, 5, &mix, Duration::from_secs(2));
        assert_eq!(pop.len(), 200);
        for w in pop.windows(2) {
            assert!(w[1].arrival >= w[0].arrival, "arrivals nondecreasing");
        }
        // Mean inter-arrival ≈ 2 s (±40% at n = 200).
        let total = pop.last().unwrap().arrival.as_secs_f64();
        let mean = total / 200.0;
        assert!((1.2..=2.8).contains(&mean), "mean inter-arrival {mean}");
    }

    #[test]
    fn staggered_arrivals_deterministic() {
        let c = SwarmConfig::tiny_test();
        let mix = CapacityClassMix::paper_default();
        let a = staggered_arrivals(&c, 20, MechanismKind::Altruism, 9, &mix, Duration::from_secs(1));
        let b = staggered_arrivals(&c, 20, MechanismKind::Altruism, 9, &mix, Duration::from_secs(1));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrival, y.arrival);
            assert_eq!(x.capacity_bps, y.capacity_bps);
        }
    }

    #[test]
    fn peer_spec_debug_is_nonempty() {
        let c = SwarmConfig::tiny_test();
        let pop = flash_crowd(&c, 1, MechanismKind::BitTorrent, 1);
        assert!(!format!("{:?}", pop[0]).is_empty());
    }
}
