//! Consensus reputation: per-round transfer reports, quorum
//! cross-checking, strikes, and bans.
//!
//! When any peer's mechanism declares a [`ConsensusPolicy`] (the
//! [`MechanismKind::ConsensusReputation`] class), the simulation keeps a
//! [`ConsensusState`] and runs a consensus pass at the end of every
//! round:
//!
//! 1. every settled peer-to-peer transfer of the round yields a *pair* of
//!    reports — the uploader's claim and the receiver's acknowledgement;
//! 2. attacker tags distort the reports deterministically (threshold-aware
//!    under-acking, Sybil report stuffing — see [`build_reports`]);
//! 3. a receiver-plausibility pass voids acknowledgements that exceed the
//!    bytes the receiver verifiably obtained this round;
//! 4. a quorum cross-check, sharded over uploader groups exactly like the
//!    epoch close pass, settles each mismatched pair: an uploader
//!    corroborated by at least `quorum` matched counterparts is believed
//!    (the deviating receiver is struck), an uncorroborated uploader eats
//!    the strike itself;
//! 5. strikes decay multiplicatively each round; crossing the ban
//!    threshold triggers a temporary ban first and a permanent ban on a
//!    repeat crossing. Banned peers are evicted from every candidate set.
//!
//! Everything in this module is pure slot-order arithmetic: no RNG is
//! drawn and no iteration order depends on hashing, so the pass is
//! byte-identical across round-loop modes, `--jobs`, and `--shards`.
//! [`aggregate`] takes an explicit shard count and the sharded result is
//! structurally equal to the sequential one (each uploader group is
//! independent); debug builds re-check that equality in the simulator.

use coop_incentives::ConsensusPolicy;

use crate::shard::shard_ranges;

/// Lifetime counters surfaced as `swarm.consensus.*` and in
/// [`crate::ConsensusSummary`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct ConsensusCounters {
    /// Individual reports considered (two per transfer pair).
    pub reports: u64,
    /// Pairs that disagreed (mismatched, voided, or phantom).
    pub disputes: u64,
    /// Temporary bans issued.
    pub bans_temp: u64,
    /// Permanent bans issued.
    pub bans_perm: u64,
    /// Bans (either kind) that hit a compliant peer — friendly fire.
    pub bans_compliant: u64,
    /// Bans (either kind) that hit a non-compliant peer.
    pub bans_noncompliant: u64,
}

/// Per-swarm consensus bookkeeping, indexed by peer slot.
#[derive(Clone, Debug)]
pub(crate) struct ConsensusState {
    pub policy: ConsensusPolicy,
    /// Accumulated (decaying) strikes per slot.
    pub strikes: Vec<f64>,
    /// Decaying corroborated-upload score per slot; this is the
    /// reputation the allocator sees.
    pub scores: Vec<f64>,
    /// First round in which a temporary ban no longer applies (0 = never
    /// temp-banned). A slot is banned while `round < banned_until`.
    pub banned_until: Vec<u64>,
    /// Temporary bans served (or started) per slot; a threshold crossing
    /// with a prior temp ban escalates to permanent.
    pub temp_bans_served: Vec<u32>,
    pub perm_banned: Vec<bool>,
    /// High-water mark of any slot's strike level, for summaries.
    pub max_strikes: f64,
    /// Current round's settled peer-to-peer transfers
    /// `(from_slot, to_slot, bytes)`; cleared by the consensus pass.
    pub transfers: Vec<(u32, u32, u64)>,
    pub counters: ConsensusCounters,
}

impl ConsensusState {
    pub fn new(policy: ConsensusPolicy) -> Self {
        ConsensusState {
            policy,
            strikes: Vec::new(),
            scores: Vec::new(),
            banned_until: Vec::new(),
            temp_bans_served: Vec::new(),
            perm_banned: Vec::new(),
            max_strikes: 0.0,
            transfers: Vec::new(),
            counters: ConsensusCounters::default(),
        }
    }

    /// Grows the per-slot vectors to cover `n` peers.
    pub fn ensure_slots(&mut self, n: usize) {
        if self.strikes.len() < n {
            self.strikes.resize(n, 0.0);
            self.scores.resize(n, 0.0);
            self.banned_until.resize(n, 0);
            self.temp_bans_served.resize(n, 0);
            self.perm_banned.resize(n, false);
        }
    }

    /// Records one settled peer-to-peer transfer (the caller excludes the
    /// seeder).
    pub fn record_transfer(&mut self, from: u32, to: u32, bytes: u64) {
        self.transfers.push((from, to, bytes));
    }

    /// Is `slot` banned during `round`? Safe on slots never seen by
    /// `ensure_slots` (new arrivals mid-round).
    pub fn is_banned_slot(&self, slot: u32, round: u64) -> bool {
        let i = slot as usize;
        self.perm_banned.get(i).copied().unwrap_or(false)
            || round < self.banned_until.get(i).copied().unwrap_or(0)
    }

    /// The allocator-facing reputation of `slot`.
    pub fn score_of(&self, slot: u32) -> f64 {
        self.scores.get(slot as usize).copied().unwrap_or(0.0)
    }

    /// Should a ban-evading peer rotate its identity now? True once the
    /// slot is permanently banned, or once a previously temp-banned slot
    /// is a single strike away from a (now permanent) repeat crossing.
    pub fn evade_due(&self, slot: u32) -> bool {
        let i = slot as usize;
        if self.perm_banned.get(i).copied().unwrap_or(false) {
            return true;
        }
        self.temp_bans_served.get(i).copied().unwrap_or(0) >= 1
            && self.strikes.get(i).copied().unwrap_or(0.0) + 1.0
                >= f64::from(self.policy.ban_threshold)
    }
}

/// One merged report pair: the uploader's byte claim and the receiver's
/// acknowledgement for a `(from, to)` edge this round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Pair {
    pub from: u32,
    pub to: u32,
    pub claim: u64,
    pub ack: u64,
}

/// What the report builder needs to know about a slot's behavior.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct SlotBehavior {
    /// Active and not in an outage this round.
    pub online: bool,
    /// Banned this round (banned slots submit no distortions).
    pub banned: bool,
    /// Threshold-aware defector: under-acks received bytes, but only up
    /// to the strike budget that keeps it strictly below the ban
    /// threshold even if every denial is attributed to it.
    pub underreport: bool,
    /// Reckless denier (the ban-evading ring): denies every receipt with
    /// no strike budget — it plans to rotate identities ahead of the
    /// permanent ban instead of staying clean.
    pub deny_all: bool,
    /// Sybil report stuffer: denies its real receipts to free
    /// plausibility budget, then fabricates matched claim/ack pairs with
    /// ring mates and phantom claims against honest bystanders.
    pub stuff_reports: bool,
    /// Collusion-ring membership (stuffers coordinate within a ring).
    pub ring: Option<u16>,
}

/// How many honest bystanders each stuffer lodges phantom claims against
/// per round.
const PHANTOMS_PER_STUFFER: usize = 2;

/// Builds the round's merged, distorted report pairs from the settled
/// transfer list. Honest pairs carry `claim == ack == bytes`; attacker
/// tags then distort acknowledgements and append fabricated pairs. The
/// result is sorted by `(from, to)` with duplicates merged, and the whole
/// construction is deterministic in slot order (no RNG).
pub(crate) fn build_reports(
    policy: &ConsensusPolicy,
    transfers: &[(u32, u32, u64)],
    behaviors: &[SlotBehavior],
    strikes: &[f64],
    piece_size: u64,
    round: u64,
) -> Vec<Pair> {
    // 1. Merge the settled transfers into honest pairs.
    let mut merged: std::collections::BTreeMap<(u32, u32), u64> = std::collections::BTreeMap::new();
    for &(from, to, bytes) in transfers {
        *merged.entry((from, to)).or_insert(0) += bytes;
    }
    let mut pairs: Vec<Pair> = merged
        .iter()
        .map(|(&(from, to), &bytes)| Pair {
            from,
            to,
            claim: bytes,
            ack: bytes,
        })
        .collect();

    let acting = |b: &SlotBehavior| b.online && !b.banned;
    let threshold = f64::from(policy.ban_threshold);

    // 2. Threshold-aware defectors deny acknowledgements, lowest uploader
    // slots first, within the budget that can never push their strikes to
    // the threshold even if every denial is charged to them. The budget
    // reads the post-decay strike level — observable mechanism state —
    // so a defector automatically denies more under lax policies (where
    // denials are charged to the uploader and its own strikes stay low).
    for (d, b) in behaviors.iter().enumerate() {
        if !(b.underreport || b.deny_all) || !acting(b) {
            continue;
        }
        let mut budget = if b.deny_all {
            usize::MAX
        } else {
            let budget = (threshold - 1.0 - strikes.get(d).copied().unwrap_or(0.0)).floor();
            if budget > 0.0 {
                budget as usize
            } else {
                0
            }
        };
        if budget == 0 {
            continue;
        }
        // `pairs` is sorted by (from, to), so scanning in order visits
        // this receiver's uploaders in ascending slot order.
        for p in pairs.iter_mut() {
            if budget == 0 {
                break;
            }
            if p.to == d as u32 && p.ack > 0 {
                p.ack = 0;
                budget -= 1;
            }
        }
    }

    // 3. Sybil stuffers. Ring receivers deny *all* their real receipts:
    // the plausibility pass caps a receiver's acknowledged bytes at what
    // it verifiably received, so the ring frees that budget for
    // fabricated pairs instead. Fabrications are sized to fit the
    // receiver's real budget, which the colluders know.
    let stuffers: Vec<usize> = behaviors
        .iter()
        .enumerate()
        .filter(|(_, b)| b.stuff_reports && acting(b) && b.ring.is_some())
        .map(|(i, _)| i)
        .collect();
    if !stuffers.is_empty() {
        let n = behaviors.len();
        let mut capacity = vec![0u64; n];
        for &(_, to, bytes) in transfers {
            if let Some(c) = capacity.get_mut(to as usize) {
                *c += bytes;
            }
        }
        for &s in &stuffers {
            for p in pairs.iter_mut() {
                if p.to == s as u32 {
                    p.ack = 0;
                }
            }
        }
        let honest: Vec<u32> = behaviors
            .iter()
            .enumerate()
            .filter(|(_, b)| {
                acting(b) && b.ring.is_none() && !b.underreport && !b.stuff_reports && !b.deny_all
            })
            .map(|(i, _)| i as u32)
            .collect();
        let mut fabricated: Vec<Pair> = Vec::new();
        for &s in &stuffers {
            let ring = behaviors[s].ring;
            let mut targets = 0usize;
            for &r in &stuffers {
                if targets >= policy.quorum {
                    break;
                }
                if r == s || behaviors[r].ring != ring {
                    continue;
                }
                let amt = piece_size.min(capacity[r]);
                if amt == 0 {
                    continue;
                }
                capacity[r] -= amt;
                fabricated.push(Pair {
                    from: s as u32,
                    to: r as u32,
                    claim: amt,
                    ack: amt,
                });
                targets += 1;
            }
            // Phantom claims against rotating honest bystanders; the
            // victim never acknowledges bytes it did not receive, so the
            // pair arrives mismatched and the quorum check attributes it.
            if !honest.is_empty() {
                let start = (round as usize + s) % honest.len();
                for k in 0..PHANTOMS_PER_STUFFER.min(honest.len()) {
                    let h = honest[(start + k) % honest.len()];
                    fabricated.push(Pair {
                        from: s as u32,
                        to: h,
                        claim: piece_size,
                        ack: 0,
                    });
                }
            }
        }
        if !fabricated.is_empty() {
            let mut map: std::collections::BTreeMap<(u32, u32), (u64, u64)> =
                pairs.iter().map(|p| ((p.from, p.to), (p.claim, p.ack))).collect();
            for f in fabricated {
                let e = map.entry((f.from, f.to)).or_insert((0, 0));
                e.0 += f.claim;
                e.1 += f.ack;
            }
            pairs = map
                .iter()
                .map(|(&(from, to), &(claim, ack))| Pair {
                    from,
                    to,
                    claim,
                    ack,
                })
                .collect();
        }
    }
    pairs
}

/// The outcome of one round's aggregation, in canonical order: void-pass
/// strikes in receiver slot order, then quorum results in uploader group
/// order. Strike amounts are all `1.0` and credits are additive, so the
/// application order cannot change the result — but keeping it canonical
/// makes the sharded/sequential equality structural.
#[derive(Clone, Debug, Default, PartialEq)]
pub(crate) struct AggregateOutcome {
    /// `(slot, amount)` strike events.
    pub strikes: Vec<(u32, f64)>,
    /// `(uploader_slot, bytes)` corroborated-upload credits.
    pub credits: Vec<(u32, u64)>,
    /// Individual reports considered (two per pair).
    pub reports: u64,
    /// Disputed pairs (voided, denied, or phantom).
    pub disputes: u64,
}

/// Cross-checks the round's report pairs.
///
/// First the sequential receiver-plausibility pass: a receiver's
/// acknowledged bytes, scanned in uploader slot order, must fit within
/// the bytes it actually received this round (`transfers` is ground
/// truth); overflowing acks are voided and the receiver is struck once.
/// Then the quorum pass, sharded over uploader groups with
/// [`shard_ranges`]: per uploader, matched pairs (`claim == ack > 0`)
/// corroborate; each mismatched pair is a dispute resolved against the
/// receiver when corroboration reaches `policy.quorum` (the uploader is
/// additionally credited its claim) and against the uploader otherwise.
/// Uploader groups are independent, so any shard count yields the same
/// outcome; workers are merged in shard order == uploader order.
pub(crate) fn aggregate(
    policy: &ConsensusPolicy,
    mut pairs: Vec<Pair>,
    transfers: &[(u32, u32, u64)],
    shards: usize,
) -> AggregateOutcome {
    let mut out = AggregateOutcome {
        reports: 2 * pairs.len() as u64,
        ..AggregateOutcome::default()
    };

    // Receiver-plausibility void pass (sequential; receiver slot order).
    let mut budget: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
    for &(_, to, bytes) in transfers {
        *budget.entry(to).or_insert(0) += bytes;
    }
    let mut by_receiver: Vec<u32> = (0..pairs.len() as u32).collect();
    by_receiver.sort_by_key(|&i| {
        let p = &pairs[i as usize];
        (p.to, p.from)
    });
    let mut cur: Option<(u32, u64, bool)> = None; // (receiver, spent, struck)
    for &i in &by_receiver {
        let p = &mut pairs[i as usize];
        match cur {
            Some((r, _, _)) if r == p.to => {}
            _ => cur = Some((p.to, 0, false)),
        }
        if p.ack == 0 {
            continue;
        }
        let cap = budget.get(&p.to).copied().unwrap_or(0);
        let (_, spent, struck) = cur.as_mut().expect("set above");
        if *spent + p.ack <= cap {
            *spent += p.ack;
        } else {
            p.ack = 0;
            out.disputes += 1;
            if !*struck {
                out.strikes.push((p.to, 1.0));
                *struck = true;
            }
        }
    }

    // Quorum cross-check, sharded over uploader groups.
    let mut groups: Vec<std::ops::Range<usize>> = Vec::new();
    let mut start = 0usize;
    for i in 1..=pairs.len() {
        if i == pairs.len() || pairs[i].from != pairs[start].from {
            groups.push(start..i);
            start = i;
        }
    }
    let quorum_check = |range: &std::ops::Range<usize>, out: &mut AggregateOutcome| {
        for g in groups[range.clone()].iter() {
            let group = &pairs[g.clone()];
            let uploader = group[0].from;
            let matched = group.iter().filter(|p| p.claim == p.ack && p.claim > 0).count();
            let mut credit: u64 = group
                .iter()
                .filter(|p| p.claim == p.ack && p.claim > 0)
                .map(|p| p.ack)
                .sum();
            for p in group.iter().filter(|p| p.ack < p.claim) {
                out.disputes += 1;
                if matched >= policy.quorum {
                    out.strikes.push((p.to, 1.0));
                    credit += p.claim;
                } else {
                    out.strikes.push((uploader, 1.0));
                }
            }
            if credit > 0 {
                out.credits.push((uploader, credit));
            }
        }
    };
    if shards <= 1 || groups.len() < 2 {
        let whole = 0..groups.len();
        quorum_check(&whole, &mut out);
    } else {
        let ranges = shard_ranges(groups.len(), shards);
        let mut parts: Vec<AggregateOutcome> = Vec::with_capacity(ranges.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .iter()
                .map(|range| {
                    let quorum_check = &quorum_check;
                    let range = range.clone();
                    scope.spawn(move || {
                        let mut part = AggregateOutcome::default();
                        quorum_check(&range, &mut part);
                        part
                    })
                })
                .collect();
            for h in handles {
                parts.push(h.join().expect("consensus shard worker panicked"));
            }
        });
        for part in parts {
            out.strikes.extend(part.strikes);
            out.credits.extend(part.credits);
            out.disputes += part.disputes;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(quorum: usize, threshold: u32) -> ConsensusPolicy {
        ConsensusPolicy {
            quorum,
            ban_threshold: threshold,
            decay: 0.9,
            temp_ban_rounds: 16,
        }
    }

    fn honest(n: usize) -> Vec<SlotBehavior> {
        vec![
            SlotBehavior {
                online: true,
                ..SlotBehavior::default()
            };
            n
        ]
    }

    #[test]
    fn honest_reports_match_and_credit_the_uploaders() {
        let p = policy(2, 4);
        let transfers = vec![(0, 1, 100), (0, 2, 50), (3, 1, 25), (0, 1, 10)];
        let pairs = build_reports(&p, &transfers, &honest(4), &[0.0; 4], 64, 0);
        // (0,1) merged to 110.
        assert_eq!(pairs.len(), 3);
        let out = aggregate(&p, pairs, &transfers, 1);
        assert_eq!(out.reports, 6);
        assert_eq!(out.disputes, 0);
        assert!(out.strikes.is_empty());
        assert_eq!(out.credits, vec![(0, 160), (3, 25)]);
    }

    #[test]
    fn corroborated_uploader_pins_the_denial_on_the_defector() {
        let p = policy(2, 4);
        // Uploader 0 serves three receivers; receiver 3 denies.
        let transfers = vec![(0, 1, 100), (0, 2, 100), (0, 3, 100)];
        let mut behaviors = honest(4);
        behaviors[3].underreport = true;
        let pairs = build_reports(&p, &transfers, &behaviors, &[0.0; 4], 64, 0);
        let out = aggregate(&p, pairs, &transfers, 1);
        assert_eq!(out.disputes, 1);
        assert_eq!(out.strikes, vec![(3, 1.0)]);
        // Uploader keeps the denied claim on top of the matched bytes.
        assert_eq!(out.credits, vec![(0, 300)]);
    }

    #[test]
    fn uncorroborated_uploader_eats_the_strike() {
        let p = policy(2, 4);
        // Uploader 0 only served the defector this round: no quorum.
        let transfers = vec![(0, 3, 100)];
        let mut behaviors = honest(4);
        behaviors[3].underreport = true;
        let pairs = build_reports(&p, &transfers, &behaviors, &[0.0; 4], 64, 0);
        let out = aggregate(&p, pairs, &transfers, 1);
        assert_eq!(out.disputes, 1);
        assert_eq!(out.strikes, vec![(0, 1.0)]);
        assert!(out.credits.is_empty());
    }

    #[test]
    fn defector_denial_budget_respects_the_threshold() {
        let p = policy(1, 4);
        // Slot 3 already carries 1.2 strikes: budget = floor(4-1-1.2) = 1,
        // so only the lowest uploader slot is denied.
        let transfers = vec![(0, 3, 10), (1, 3, 10), (2, 3, 10)];
        let mut behaviors = honest(4);
        behaviors[3].underreport = true;
        let strikes = [0.0, 0.0, 0.0, 1.2];
        let pairs = build_reports(&p, &transfers, &behaviors, &strikes, 64, 0);
        let denied: Vec<u32> = pairs.iter().filter(|p| p.ack < p.claim).map(|p| p.from).collect();
        assert_eq!(denied, vec![0]);
        // At 3.1 strikes the budget is zero.
        let strikes = [0.0, 0.0, 0.0, 3.1];
        let pairs = build_reports(&p, &transfers, &behaviors, &strikes, 64, 0);
        assert!(pairs.iter().all(|p| p.ack == p.claim));
    }

    #[test]
    fn reckless_denier_ignores_the_strike_budget() {
        let p = policy(1, 4);
        // Slot 3 already sits at 3.5 strikes — a threshold-aware defector
        // would deny nothing, a ban evader denies everything.
        let transfers = vec![(0, 3, 10), (1, 3, 10), (2, 3, 10)];
        let mut behaviors = honest(4);
        behaviors[3].deny_all = true;
        let strikes = [0.0, 0.0, 0.0, 3.5];
        let pairs = build_reports(&p, &transfers, &behaviors, &strikes, 64, 0);
        assert!(pairs.iter().filter(|q| q.to == 3).all(|q| q.ack == 0));
    }

    #[test]
    fn implausible_acks_are_voided_and_strike_the_receiver() {
        let p = policy(2, 4);
        // Receiver 1 actually got 100 bytes but a fabricated pair acks 80
        // more than it could have received.
        let transfers = vec![(0, 1, 100)];
        let pairs = vec![
            Pair {
                from: 0,
                to: 1,
                claim: 100,
                ack: 100,
            },
            Pair {
                from: 2,
                to: 1,
                claim: 80,
                ack: 80,
            },
        ];
        let out = aggregate(&p, pairs, &transfers, 1);
        // The overflowing ack is voided (one dispute), the receiver is
        // struck once, and uploader 2 gains no quorum so the now-
        // mismatched pair strikes it too.
        assert!(out.disputes >= 2);
        assert!(out.strikes.contains(&(1, 1.0)));
        assert!(out.strikes.contains(&(2, 1.0)));
        assert_eq!(out.credits, vec![(0, 100)]);
    }

    #[test]
    fn stuffer_ring_frees_budget_and_frames_honest_bystanders() {
        let p = policy(1, 4);
        // Slots 3 and 4 are ring stuffers; each receives 64 real bytes
        // from uploader 0, which they deny to make room for fabrication.
        let transfers = vec![(0, 3, 64), (0, 4, 64), (0, 1, 64), (0, 2, 64)];
        let mut behaviors = honest(5);
        for s in [3, 4] {
            behaviors[s].stuff_reports = true;
            behaviors[s].ring = Some(0);
        }
        let pairs = build_reports(&p, &transfers, &behaviors, &[0.0; 5], 64, 7);
        // Fabricated matched pairs 3<->4 fit the 64-byte real budget.
        assert!(pairs
            .iter()
            .any(|q| q.from == 3 && q.to == 4 && q.claim == 64 && q.ack == 64));
        // Phantom claims against honest bystanders arrive unacked.
        assert!(pairs.iter().any(|q| q.from == 3 && q.ack == 0 && q.claim == 64
            && (q.to == 1 || q.to == 2)));
        let out = aggregate(&p, pairs, &transfers, 1);
        // With quorum 1 the fabricated corroboration makes the phantom
        // stick: some honest bystander is struck...
        assert!(out.strikes.iter().any(|&(s, _)| s == 1 || s == 2));
        // ...but the ring's denial of uploader 0's real (quorum-backed)
        // pairs strikes the stuffers as well.
        assert!(out.strikes.iter().any(|&(s, _)| s == 3 || s == 4));
    }

    #[test]
    fn sharded_aggregation_matches_sequential() {
        let p = policy(2, 4);
        // A synthetic workload with many uploaders, a defector, and a
        // stuffer ring, to exercise all branches.
        let mut transfers = Vec::new();
        for u in 0u32..40 {
            for r in 0u32..4 {
                let to = (u + r + 1) % 48;
                transfers.push((u, to, 64 + u as u64 * 7 + r as u64));
            }
        }
        let mut behaviors = honest(48);
        behaviors[41].underreport = true;
        behaviors[42].underreport = true;
        for s in [44, 45, 46] {
            behaviors[s].stuff_reports = true;
            behaviors[s].ring = Some(1);
        }
        let strikes = vec![0.4; 48];
        let pairs = build_reports(&p, &transfers, &behaviors, &strikes, 64, 3);
        let seq = aggregate(&p, pairs.clone(), &transfers, 1);
        for shards in [2, 3, 8] {
            let sharded = aggregate(&p, pairs.clone(), &transfers, shards);
            assert_eq!(seq, sharded, "shards={shards}");
        }
        assert!(seq.reports > 0);
    }

    #[test]
    fn state_bans_and_evasion_triggers() {
        let mut c = ConsensusState::new(policy(2, 4));
        c.ensure_slots(3);
        assert!(!c.is_banned_slot(1, 10));
        c.banned_until[1] = 12;
        assert!(c.is_banned_slot(1, 10));
        assert!(!c.is_banned_slot(1, 12));
        c.perm_banned[2] = true;
        assert!(c.is_banned_slot(2, 1_000_000));
        assert!(c.evade_due(2));
        // Slot 0: temp ban served and strikes one below the threshold.
        c.temp_bans_served[0] = 1;
        c.strikes[0] = 3.0;
        assert!(c.evade_due(0));
        c.strikes[0] = 2.9;
        assert!(!c.evade_due(0));
        // Unknown slots are never banned.
        assert!(!c.is_banned_slot(99, 5));
    }
}
