//! Eagerly-validated construction of [`Simulation`]s.
//!
//! [`Simulation::builder`] replaces the raw `Simulation::new(config,
//! population)` entry point: the builder validates the configuration *and*
//! every peer spec before any simulator state is allocated, and returns
//! typed [`BuildError`]s instead of panicking mid-run on a bad spec.
//!
//! Attack wiring stays decoupled: the builder's
//! [`attack_plan`](SimulationBuilder::attack_plan) hook accepts any
//! [`PopulationPatch`], which `coop-attacks` implements for its
//! `AttackPlan` — so this crate never depends on the attack catalogue.

use coop_telemetry::{Profiler, Recorder};

use crate::config::{ConfigError, PeerSpec, SwarmConfig};
use crate::faults::{FaultPatch, FaultSchedule};
use crate::sim::{RoundLoop, Simulation};

/// A transformation applied to the population before the simulation is
/// assembled. `coop_attacks::AttackPlan` implements this so attack
/// scenarios plug into [`SimulationBuilder::attack_plan`] without a
/// dependency cycle between the crates.
pub trait PopulationPatch {
    /// Mutates `population` in place, seeded deterministically; returns
    /// the number of specs modified.
    fn apply_patch(&self, population: &mut [PeerSpec], seed: u64) -> usize;
}

/// Closures can serve as ad-hoc patches (tests use this).
impl<F: Fn(&mut [PeerSpec], u64) -> usize> PopulationPatch for F {
    fn apply_patch(&self, population: &mut [PeerSpec], seed: u64) -> usize {
        self(population, seed)
    }
}

/// Why a [`SimulationBuilder`] refused to build.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// The [`SwarmConfig`] failed [`SwarmConfig::validate`].
    Config(ConfigError),
    /// No peers were supplied — a swarm needs at least one arrival.
    EmptyPopulation,
    /// One peer spec is unusable.
    InvalidPeer {
        /// Index into the population vector.
        index: usize,
        /// What is wrong with the spec.
        reason: String,
    },
    /// The compiled fault schedule violates a structural invariant (see
    /// [`FaultSchedule::validate`]).
    InvalidFaults {
        /// The first violation found.
        reason: String,
    },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Config(e) => write!(f, "{e}"),
            BuildError::EmptyPopulation => write!(f, "population must not be empty"),
            BuildError::InvalidPeer { index, reason } => {
                write!(f, "invalid peer spec at index {index}: {reason}")
            }
            BuildError::InvalidFaults { reason } => {
                write!(f, "invalid fault schedule: {reason}")
            }
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for BuildError {
    fn from(e: ConfigError) -> Self {
        BuildError::Config(e)
    }
}

/// Staged inputs for one [`Simulation`], validated on
/// [`build`](SimulationBuilder::build).
///
/// # Example
///
/// ```
/// use coop_swarm::{flash_crowd, Simulation, SwarmConfig};
/// use coop_incentives::MechanismKind;
///
/// let config = SwarmConfig::tiny_test();
/// let population = flash_crowd(&config, 8, MechanismKind::TChain, 7);
/// let result = Simulation::builder(config)
///     .population(population)
///     .build()
///     .expect("valid config and population")
///     .run();
/// assert!(result.rounds_run > 0);
/// ```
#[must_use = "call .build() to obtain the simulation"]
pub struct SimulationBuilder {
    config: SwarmConfig,
    population: Vec<PeerSpec>,
    patches: Vec<Box<dyn PopulationPatch>>,
    fault_patch: Option<Box<dyn FaultPatch>>,
    fault_schedule: Option<FaultSchedule>,
    recorder: Recorder,
    profiler: Profiler,
    naive_hotpath: bool,
    round_loop: RoundLoop,
    shards: usize,
    checkpoint_every: Option<u64>,
}

impl std::fmt::Debug for SimulationBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimulationBuilder")
            .field("config", &self.config)
            .field("population", &self.population.len())
            .field("patches", &self.patches.len())
            .field("faults", &self.fault_patch.is_some())
            .finish()
    }
}

impl SimulationBuilder {
    pub(crate) fn new(config: SwarmConfig) -> Self {
        SimulationBuilder {
            config,
            population: Vec::new(),
            patches: Vec::new(),
            fault_patch: None,
            fault_schedule: None,
            recorder: Recorder::disabled(),
            profiler: Profiler::disabled(),
            naive_hotpath: false,
            round_loop: RoundLoop::Dirty,
            shards: 1,
            checkpoint_every: None,
        }
    }

    /// Selects the round-loop strategy (the dirty-set loop by default).
    /// Every [`RoundLoop`] yields identical results — the three-way
    /// `hotpath_equivalence` battery pins this — so the switch exists for
    /// the equivalence oracles and the `scale` bench baselines.
    pub fn round_loop(mut self, round_loop: RoundLoop) -> Self {
        self.round_loop = round_loop;
        self
    }

    /// Shards one simulation's round across `k` scoped worker threads
    /// (`1` — the default — runs everything on the caller's thread).
    /// Sharding is purely a wall-clock lever: results and artifacts are
    /// byte-identical for any `k` (pinned by the sharded rows of the
    /// byte-identity batteries). Values are clamped to at least 1.
    pub fn shards(mut self, k: usize) -> Self {
        self.shards = k.max(1);
        self
    }

    /// Captures a [`SimCheckpoint`](crate::SimCheckpoint) after every
    /// `k`-th completed round (`k = 0` disables, the default). Collect
    /// them with [`Simulation::run_checkpointed`]. Checkpointing is
    /// observational: any cadence — including none — yields identical
    /// results.
    pub fn checkpoint_every(mut self, k: u64) -> Self {
        self.checkpoint_every = (k > 0).then_some(k);
        self
    }

    /// Routes the round loop through the pre-index hot path (per-probe
    /// availability recounts, per-round candidate rebuilds, per-bit
    /// rarest-first picks, full peer-struct membership scans). Results
    /// are identical to the default indexed path — the
    /// `hotpath_equivalence` battery pins this — so this switch exists
    /// only as the oracle for equivalence tests and the baseline for the
    /// `scale` bench. Gated behind the `hotpath-oracle` feature.
    #[cfg(any(test, feature = "hotpath-oracle"))]
    pub fn naive_hotpath(mut self, naive: bool) -> Self {
        self.naive_hotpath = naive;
        self
    }

    /// Attaches a telemetry [`Recorder`] (disabled by default). The
    /// recorder is purely observational: attaching one — at any sampling
    /// rate — never changes the simulation's results. Collect what it
    /// gathered with [`Simulation::run_traced`].
    pub fn recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Attaches a wall-clock [`Profiler`] (disabled by default). Like the
    /// recorder, the profiler is purely observational: attaching one never
    /// changes the simulation's results — it only times the round-loop
    /// phases. Collect what it gathered with [`Simulation::run_profiled`].
    pub fn profiler(mut self, profiler: Profiler) -> Self {
        self.profiler = profiler;
        self
    }

    /// Sets the arriving population (replacing any earlier call).
    pub fn population(mut self, population: Vec<PeerSpec>) -> Self {
        self.population = population;
        self
    }

    /// Queues a population patch — typically a `coop_attacks::AttackPlan`
    /// — applied at [`build`](SimulationBuilder::build) time, seeded with
    /// the config seed. Patches apply in the order queued.
    pub fn attack_plan(mut self, plan: impl PopulationPatch + 'static) -> Self {
        self.patches.push(Box::new(plan));
        self
    }

    /// Attaches a fault plan — typically a `coop_faults::FaultPlan` —
    /// compiled at [`build`](SimulationBuilder::build) time (after attack
    /// patches, so faults see the final population) into a pre-drawn
    /// [`FaultSchedule`]. Replaces any earlier `fault_plan` or
    /// [`fault_schedule`](SimulationBuilder::fault_schedule) call.
    pub fn fault_plan(mut self, plan: impl FaultPatch + 'static) -> Self {
        self.fault_patch = Some(Box::new(plan));
        self.fault_schedule = None;
        self
    }

    /// Attaches an already-compiled fault schedule directly (tests use
    /// this; `fault_plan` is the usual entry point). Replaces any earlier
    /// [`fault_plan`](SimulationBuilder::fault_plan) call.
    pub fn fault_schedule(mut self, schedule: FaultSchedule) -> Self {
        self.fault_schedule = Some(schedule);
        self.fault_patch = None;
        self
    }

    /// Validates everything and assembles the simulation.
    ///
    /// # Errors
    ///
    /// - [`BuildError::Config`] if the configuration is invalid;
    /// - [`BuildError::EmptyPopulation`] if no peers were supplied;
    /// - [`BuildError::InvalidPeer`] if any (post-patch) spec has a
    ///   non-finite or negative capacity or a zero whitewash interval;
    /// - [`BuildError::InvalidFaults`] if the compiled fault schedule
    ///   fails [`FaultSchedule::validate`].
    pub fn build(mut self) -> Result<Simulation, BuildError> {
        self.config.validate()?;
        if self.population.is_empty() {
            return Err(BuildError::EmptyPopulation);
        }
        let seed = self.config.seed;
        for patch in &self.patches {
            patch.apply_patch(&mut self.population, seed);
        }
        // Faults compile after attack patches so the schedule is drawn
        // against the final population (and may stagger its arrivals).
        let faults = match (&self.fault_patch, self.fault_schedule.take()) {
            (Some(patch), _) => patch.compile_faults(&mut self.population, &self.config),
            (None, Some(schedule)) => schedule,
            (None, None) => FaultSchedule::empty(),
        };
        faults
            .validate(self.population.len())
            .map_err(|reason| BuildError::InvalidFaults { reason })?;
        // No fault may fire at or before its peer's arrival round — a
        // schedule naming a peer that has not spawned yet would be
        // silently unapplicable.
        let driver = coop_des::RoundDriver::new(self.config.round);
        for ev in faults.events() {
            let arrival_round = driver.round_of(self.population[ev.peer].arrival);
            if ev.round <= arrival_round {
                return Err(BuildError::InvalidFaults {
                    reason: format!(
                        "{ev:?} fires at or before the peer's arrival round {arrival_round}"
                    ),
                });
            }
        }
        for (index, spec) in self.population.iter().enumerate() {
            if !spec.capacity_bps.is_finite() || spec.capacity_bps < 0.0 {
                return Err(BuildError::InvalidPeer {
                    index,
                    reason: format!(
                        "capacity_bps must be finite and nonnegative, got {}",
                        spec.capacity_bps
                    ),
                });
            }
            if spec.tags.whitewash_interval == Some(0) {
                return Err(BuildError::InvalidPeer {
                    index,
                    reason: "whitewash_interval must be positive".to_string(),
                });
            }
        }
        let mut sim = Simulation::assemble(self.config, self.population, self.recorder, faults);
        sim.naive_hotpath = self.naive_hotpath;
        sim.set_round_loop(self.round_loop);
        sim.set_shards(self.shards);
        sim.set_checkpoint_every(self.checkpoint_every);
        sim.set_profiler(self.profiler);
        Ok(sim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{flash_crowd, PeerTags};
    use crate::faults::{FaultEvent, FaultKind};
    use coop_incentives::MechanismKind;

    fn base() -> (SwarmConfig, Vec<PeerSpec>) {
        let config = SwarmConfig::tiny_test();
        let population = flash_crowd(&config, 6, MechanismKind::Altruism, 5);
        (config, population)
    }

    #[test]
    fn builds_and_runs() {
        let (config, population) = base();
        let result = Simulation::builder(config)
            .population(population)
            .build()
            .unwrap()
            .run();
        assert!(result.rounds_run > 0);
    }

    #[test]
    fn rejects_invalid_config() {
        let (mut config, population) = base();
        config.neighbor_degree = 0;
        let err = Simulation::builder(config)
            .population(population)
            .build()
            .unwrap_err();
        assert!(matches!(err, BuildError::Config(_)), "{err:?}");
        assert!(err.to_string().contains("neighbor_degree"));
    }

    #[test]
    fn rejects_empty_population() {
        let (config, _) = base();
        let err = Simulation::builder(config).build().unwrap_err();
        assert_eq!(err, BuildError::EmptyPopulation);
    }

    #[test]
    fn rejects_bad_peer_specs() {
        let (config, mut population) = base();
        population[2].capacity_bps = f64::NAN;
        let err = Simulation::builder(config.clone())
            .population(population)
            .build()
            .unwrap_err();
        assert!(
            matches!(err, BuildError::InvalidPeer { index: 2, .. }),
            "{err:?}"
        );

        let (_, mut population) = base();
        population[0].tags = PeerTags {
            whitewash_interval: Some(0),
            ..PeerTags::compliant()
        };
        let err = Simulation::builder(config)
            .population(population)
            .build()
            .unwrap_err();
        assert!(
            matches!(err, BuildError::InvalidPeer { index: 0, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn patches_apply_in_order_with_config_seed() {
        let (mut config, population) = base();
        config.seed = 99;
        let sim = Simulation::builder(config)
            .population(population)
            .attack_plan(|pop: &mut [PeerSpec], seed: u64| {
                assert_eq!(seed, 99, "patches see the config seed");
                pop[0].tags.compliant = false;
                1
            })
            .attack_plan(|pop: &mut [PeerSpec], _seed: u64| {
                // Runs second: sees the first patch's effect.
                assert!(!pop[0].tags.compliant);
                pop[0].tags.large_view = true;
                1
            })
            .build()
            .unwrap();
        let result = sim.run();
        assert!(result.peers.iter().any(|r| !r.compliant));
    }

    #[test]
    fn rejects_invalid_fault_schedule() {
        let (config, population) = base();
        let bad = FaultSchedule::from_events(
            vec![FaultEvent {
                round: 3,
                peer: 100, // out of range for 6 peers
                kind: FaultKind::Depart,
            }],
            0.0,
            0,
        );
        let err = Simulation::builder(config)
            .population(population)
            .fault_schedule(bad)
            .build()
            .unwrap_err();
        assert!(matches!(err, BuildError::InvalidFaults { .. }), "{err:?}");
    }

    #[test]
    fn fault_patch_sees_final_population_and_config() {
        let (mut config, population) = base();
        config.seed = 42;
        let sim = Simulation::builder(config)
            .population(population)
            .attack_plan(|pop: &mut [PeerSpec], _seed: u64| {
                pop[1].tags.compliant = false;
                1
            })
            .fault_plan(|pop: &mut [PeerSpec], config: &SwarmConfig| {
                assert_eq!(config.seed, 42, "fault patches see the config");
                assert!(!pop[1].tags.compliant, "faults compile after attacks");
                // Fault patches may restage arrivals (Poisson staggering
                // does); here it also pins the arrival round below the
                // departure round.
                pop[0].arrival = coop_des::SimTime::ZERO;
                FaultSchedule::from_events(
                    vec![FaultEvent {
                        round: 5,
                        peer: 0,
                        kind: FaultKind::Depart,
                    }],
                    0.0,
                    config.seed,
                )
            })
            .build()
            .unwrap();
        let result = sim.run();
        assert!(result.rounds_run > 0);
    }
}
