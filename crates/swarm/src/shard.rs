//! Intra-simulation sharding: one swarm's round, split across scoped
//! worker threads.
//!
//! Three read-only phases of the round loop shard over contiguous
//! peer-ID ranges (the executor's slot-ordered merge pattern, applied
//! *inside* a sim):
//!
//! 1. dirty-set CSR expansion (per-thread visit bitmaps, OR-merged —
//!    order-independent by construction),
//! 2. the end-of-round mechanism hooks (each peer's `on_round_end`
//!    reads shared state and mutates only its own taken-out mechanism
//!    box, so any interleaving yields the same result),
//! 3. the seeder's candidate `needs()` scan (per-range vectors
//!    concatenated in range order, which *is* id order).
//!
//! Nothing here draws RNG, touches telemetry, or writes shared state, so
//! artifacts are byte-identical for any `--shards K` — pinned by the
//! sharded rows of the profile/byte-identity batteries.

use std::collections::HashMap;
use std::ops::Range;

use coop_incentives::ledger::{ContributionLedger, DeficitLedger, ReputationTable};
use coop_incentives::{Obligation, PeerId, SwarmView};
use coop_piece::Bitfield;

use crate::peer::PeerState;
use crate::sim::SEEDER_ID;
use crate::transfer::TransferTable;

/// Below this many items a phase runs sequentially: thread spawn costs
/// more than the scan. Purely a latency knob — results are identical
/// either way.
pub(crate) const SHARD_MIN_ITEMS: usize = 256;

/// Splits `len` items into at most `k` contiguous, disjoint ranges that
/// cover `0..len` in order. The first ranges carry the remainder, so no
/// range is more than one item longer than another.
pub(crate) fn shard_ranges(len: usize, k: usize) -> Vec<Range<usize>> {
    if len == 0 || k == 0 {
        return Vec::new();
    }
    let k = k.min(len);
    let base = len / k;
    let extra = len % k;
    let mut out = Vec::with_capacity(k);
    let mut start = 0;
    for i in 0..k {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// Peer `id`'s active-neighbor candidate row in the flat CSR adjacency
/// (the free-function twin of `Simulation::round_candidates`, usable
/// from shard workers that only hold the raw arrays).
pub(crate) fn candidates_of<'a>(adj: &'a [PeerId], adj_off: &[u32], id: u32) -> &'a [PeerId] {
    let i = id as usize;
    match (adj_off.get(i), adj_off.get(i + 1)) {
        (Some(&a), Some(&b)) => &adj[a as usize..b as usize],
        _ => &[],
    }
}

/// Can `id` currently exchange bytes? Free-function twin of
/// `Simulation::is_online`.
pub(crate) fn is_online_in(peers: &[PeerState], id: PeerId) -> bool {
    if id == SEEDER_ID {
        return false;
    }
    peers
        .get(id.index() as usize)
        .is_some_and(|p| p.is_active() && !p.offline)
}

/// Does active peer `who` need at least one piece `from` can offer?
/// The single authority on interest: `Simulation::needs` delegates here,
/// and shard workers call it directly with borrowed arrays.
pub(crate) fn needs_with(
    peers: &[PeerState],
    transfers: &TransferTable,
    seeder_bf: &Bitfield,
    seeder_online: bool,
    who: PeerId,
    from: PeerId,
) -> bool {
    if who == from || !is_online_in(peers, who) {
        return false;
    }
    // A partially transferred piece keeps the pair interested; without
    // this, the uploader would never re-select the target and the
    // transfer could stall one piece short of completion.
    if transfers.get(from, who).is_some() {
        return true;
    }
    let w = &peers[who.index() as usize];
    let offer = if from == SEEDER_ID {
        if !seeder_online {
            return false;
        }
        seeder_bf
    } else if is_online_in(peers, from) {
        peers[from.index() as usize].offer()
    } else {
        return false;
    };
    if !w.absent().intersects(offer) {
        return false;
    }
    w.absent()
        .iter_common(offer)
        .any(|p| !w.inflight.contains(&p))
}

/// The plain-data slice of simulation state a shard worker needs to
/// serve [`SwarmView`] queries. Deliberately excludes the recorder, the
/// profiler, and the seed tree: workers observe, they never record or
/// draw.
pub(crate) struct ShardCtx<'a> {
    pub peers: &'a [PeerState],
    pub adj: &'a [PeerId],
    pub adj_off: &'a [u32],
    pub transfers: &'a TransferTable,
    pub seeder_bf: &'a Bitfield,
    pub seeder_online: bool,
    pub round_idx: u64,
    pub trusted_reputation: bool,
    pub trusted_cache: &'a HashMap<PeerId, f64>,
    pub reputation: &'a ReputationTable,
    /// Consensus-reputation scores by slot when the population runs the
    /// consensus mechanism; they then override both reputation sources,
    /// exactly like [`Simulation::reputation_of`](crate::Simulation).
    pub consensus_scores: Option<&'a [f64]>,
    pub piece_size: u64,
}

impl ShardCtx<'_> {
    fn needs(&self, who: PeerId, from: PeerId) -> bool {
        needs_with(
            self.peers,
            self.transfers,
            self.seeder_bf,
            self.seeder_online,
            who,
            from,
        )
    }

    fn is_active(&self, id: PeerId) -> bool {
        id != SEEDER_ID
            && self
                .peers
                .get(id.index() as usize)
                .is_some_and(|p| p.is_active())
    }
}

/// A read-only window onto one allocating peer, served from borrowed
/// arrays instead of `&Simulation` — the thread-shareable twin of
/// `SimView`, answer-for-answer identical (pinned by the sharded
/// equivalence batteries).
pub(crate) struct ShardView<'a> {
    ctx: &'a ShardCtx<'a>,
    me: PeerId,
}

impl<'a> ShardView<'a> {
    pub(crate) fn new(ctx: &'a ShardCtx<'a>, me: PeerId) -> Self {
        ShardView { ctx, me }
    }

    fn my_state(&self) -> &PeerState {
        &self.ctx.peers[self.me.index() as usize]
    }
}

impl SwarmView for ShardView<'_> {
    fn me(&self) -> PeerId {
        self.me
    }

    fn round(&self) -> u64 {
        self.ctx.round_idx
    }

    fn neighbors(&self) -> &[PeerId] {
        candidates_of(self.ctx.adj, self.ctx.adj_off, self.me.index())
    }

    fn peer_needs_from_me(&self, peer: PeerId) -> bool {
        self.ctx.needs(peer, self.me)
    }

    fn i_need_from(&self, peer: PeerId) -> bool {
        self.ctx.needs(self.me, peer)
    }

    fn peer_needs_from(&self, who: PeerId, from: PeerId) -> bool {
        self.ctx.needs(who, from)
    }

    fn piece_count(&self, peer: PeerId) -> u32 {
        if self.ctx.is_active(peer) {
            self.ctx.peers[peer.index() as usize].piece_count()
        } else {
            0
        }
    }

    fn reputation(&self, peer: PeerId) -> f64 {
        if let Some(scores) = self.ctx.consensus_scores {
            return scores.get(peer.index() as usize).copied().unwrap_or(0.0);
        }
        if self.ctx.trusted_reputation {
            self.ctx.trusted_cache.get(&peer).copied().unwrap_or(0.0)
        } else {
            self.ctx.reputation.reputation(peer)
        }
    }

    fn ledger(&self) -> &ContributionLedger {
        &self.my_state().ledger
    }

    fn deficits(&self) -> &DeficitLedger {
        &self.my_state().deficits
    }

    fn obligations(&self) -> &[Obligation] {
        &self.my_state().obligations
    }

    fn uploading_to(&self, peer: PeerId) -> bool {
        self.ctx.transfers.get(self.me, peer).is_some()
    }

    fn obligation_count(&self, peer: PeerId) -> usize {
        if self.ctx.is_active(peer) {
            // Conditional in-flight pieces count toward the backlog: they
            // become obligations on delivery, and uploaders that ignore
            // them overfill slow receivers faster than they can
            // reciprocate.
            let p = &self.ctx.peers[peer.index() as usize];
            p.obligations.len() + p.inflight_conditional
        } else {
            0
        }
    }

    fn piece_size(&self) -> u64 {
        self.ctx.piece_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ranges_are_balanced() {
        assert_eq!(shard_ranges(10, 4), vec![0..3, 3..6, 6..8, 8..10]);
        assert_eq!(shard_ranges(4, 8), vec![0..1, 1..2, 2..3, 3..4]);
        assert_eq!(shard_ranges(0, 4), Vec::<Range<usize>>::new());
        assert_eq!(shard_ranges(5, 1), vec![0..5]);
        assert_eq!(shard_ranges(7, 0), Vec::<Range<usize>>::new());
    }

    proptest! {
        /// For any dirty-set size and any shard count, the ranges cover
        /// `0..len` exactly once, in order, disjointly — so a partition
        /// of the *sorted* dirty ids into these ranges is a partition
        /// into contiguous peer-ID ranges, and concatenating per-range
        /// results in range order reproduces the sequential order.
        #[test]
        fn ranges_cover_disjointly_for_any_k(len in 0usize..10_000, k in 0usize..64) {
            let ranges = shard_ranges(len, k);
            if len == 0 || k == 0 {
                prop_assert!(ranges.is_empty());
                return Ok(());
            }
            prop_assert!(ranges.len() <= k);
            let mut expect_start = 0usize;
            let mut min_len = usize::MAX;
            let mut max_len = 0usize;
            for r in &ranges {
                prop_assert_eq!(r.start, expect_start, "gap or overlap at {}", r.start);
                prop_assert!(r.end > r.start, "empty range");
                min_len = min_len.min(r.len());
                max_len = max_len.max(r.len());
                expect_start = r.end;
            }
            prop_assert_eq!(expect_start, len, "ranges must cover to len");
            prop_assert!(max_len - min_len <= 1, "ranges must be balanced");
        }
    }
}
