//! The event-driven swarm simulation.
//!
//! The run loop follows the paper's experimental setup (Section V-A): a
//! seeder plus a flash crowd of peers; discrete one-second timeslots in
//! which every peer allocates its upload budget through its incentive
//! mechanism; transfers accumulate bytes into discrete pieces; peers
//! depart immediately on completing the file. Attack substrate features
//! (whitewashing, collusion rings, large-view neighbor sets) are driven by
//! [`PeerTags`](crate::PeerTags).

use std::collections::BTreeSet;

use coop_des::rng::SeedTree;
use coop_des::{Engine, RoundDriver, SimTime};
use coop_telemetry::profile::phase;
use coop_telemetry::{
    Category, Histogram, PhaseToken, ProfileReport, Profiler, Recorder, Sampling, TelemetryConfig,
    TelemetryReport, TraceEvent,
};
use coop_incentives::ledger::{ReportedReputation, ReputationTable};
use coop_incentives::metrics::TimeSeries;
use coop_incentives::{
    GrantReason, Mechanism, Obligation, PeerId, ReciprocationCondition, SettleCadence,
};
use coop_piece::{
    AvailabilityIndex, Bitfield, PiecePicker, PieceSelection, RandomFirstPicker, RarestFirstPicker,
    SequentialPicker,
};
use rand::seq::SliceRandom;
use rand::RngCore;

use crate::checkpoint::{CheckpointError, CheckpointLog, CheckpointState, SimCheckpoint};
use crate::config::{ConfigError, PeerSpec, PieceStrategy, SwarmConfig};
use crate::consensus::{self, ConsensusState, SlotBehavior};
use crate::dirty::{DirtySet, VisitBits};
use crate::faults::{FaultKind, FaultSchedule};
use crate::peer::{Departure, PeerState};
use crate::result::{ConsensusSummary, PeerRecord, SimResult, Totals};
use crate::shard::{self, shard_ranges, ShardCtx, ShardView, SHARD_MIN_ITEMS};
use crate::soa::HotPeers;
use crate::transfer::{InFlight, TransferTable};
use crate::view_impl::SimView;

/// The reserved id of the seeder (not a peer slot).
pub const SEEDER_ID: PeerId = PeerId::new(u32::MAX);

/// Does this mechanism settle at the end of the round after which
/// `finished_rounds` rounds have completed? Per-transfer mechanisms never
/// do; epoch mechanisms settle whenever their epoch length divides the
/// finished-round count.
fn at_epoch_boundary(mech: &dyn Mechanism, finished_rounds: u64) -> bool {
    match mech.settle_cadence() {
        SettleCadence::PerTransfer => false,
        SettleCadence::Epoch(n) => finished_rounds.is_multiple_of(n.max(1)),
    }
}

#[derive(Debug, Clone, Copy)]
pub(crate) enum Event {
    Arrival(usize),
    RoundTick,
}

/// Which allocation-loop strategy the round loop runs. All strategies
/// produce identical [`SimResult`]s (pinned by the three-way
/// `hotpath_equivalence` battery); they differ only in how much work a
/// round costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoundLoop {
    /// Visit every online peer every round, served by the incremental
    /// indexes (availability histogram, CSR adjacency, SoA membership).
    /// Retained as the second equivalence oracle beside the
    /// `hotpath-oracle` naive loop.
    Indexed,
    /// Event-driven: visit only the peers marked dirty since last round
    /// plus their CSR-adjacent candidates (and, live-checked, peers with
    /// outstanding obligations or outgoing partial transfers). Skipped
    /// peers are provably no-ops: every built-in mechanism returns no
    /// grants, draws no RNG, and mutates nothing when none of its
    /// candidates is interested and no obligations are pending.
    #[default]
    Dirty,
}

/// One simulation run.
pub struct Simulation {
    config: SwarmConfig,
    peers: Vec<PeerState>,
    specs: Vec<Option<PeerSpec>>,
    engine: Engine<Event>,
    rounds: RoundDriver,
    seeds: SeedTree,
    availability: AvailabilityIndex,
    transfers: TransferTable,
    reputation: ReputationTable,
    seeder_bf: Bitfield,
    round_idx: u64,
    now: SimTime,
    expected_compliant: usize,
    reports: ReportedReputation,
    pretrusted: Vec<PeerId>,
    trusted_cache: std::collections::HashMap<PeerId, f64>,
    /// Flat CSR-style active-neighbor adjacency: peer `i`'s candidate
    /// list is `adj[adj_off[i]..adj_off[i+1]]`. Rebuilt by
    /// [`Self::refresh_candidates`] only when [`Self::adj_dirty`] says a
    /// membership or status change invalidated it, and borrowed by every
    /// [`SimView`] between rebuilds.
    adj: Vec<PeerId>,
    /// `peers.len() + 1` offsets into [`Self::adj`].
    adj_off: Vec<u32>,
    /// Set by every mutation that can change candidate lists (spawns,
    /// departures, outages, neighbor replenishment); cleared on rebuild.
    adj_dirty: bool,
    /// How many adjacency rebuilds actually ran (telemetry).
    adjacency_rebuilds: u64,
    /// Struct-of-arrays mirror of the hot per-peer fields, kept in
    /// lockstep with [`Self::peers`] (see [`HotPeers`]).
    hot: HotPeers,
    /// Scratch "pieces already held or in flight" bitfield for
    /// [`Self::pick_piece`], reused across calls instead of cloning the
    /// downloader's bitfield per candidate piece selection.
    scratch_held: Bitfield,
    /// Scratch rarest-tie buffer for the indexed piece pick, reused so
    /// steady-state piece selection allocates nothing.
    scratch_ties: Vec<u32>,
    /// Arrivals not yet spawned (`specs` entries still `Some`).
    pending_arrivals: usize,
    /// Active peers that hold the run open (compliant or whitewashing);
    /// with `pending_arrivals` this replaces the per-round all-done scan.
    open_active: usize,
    /// Compliant peers that departed via completion (replaces the
    /// seeder-exit pass's per-round population scan).
    compliant_completed: usize,
    /// Run every hot-path consumer through the pre-index scans (fresh
    /// per-probe availability histograms, per-round candidate rebuilds,
    /// per-bit rarest-first picks, full peer-struct membership scans).
    /// The `hotpath_equivalence` battery and the `scale` bench flip this
    /// on as the oracle/baseline; results must be identical either way.
    pub(crate) naive_hotpath: bool,
    /// The allocation-loop strategy ([`RoundLoop::Dirty`] by default;
    /// `naive_hotpath` overrides both indexed strategies entirely).
    round_loop: RoundLoop,
    /// Worker threads sharding one round's read-only scans (1 = all on
    /// the caller's thread). Observational for results: artifacts are
    /// byte-identical for any value.
    shards: usize,
    /// Peers whose allocation-relevant state changed since the current
    /// visit set was built (piece/obligation/neighbor/fault churn).
    dirty: DirtySet,
    /// The live visit bitmap for the round in progress: dirty ∪
    /// CSR-neighbors(dirty) ∪ uploaders-with-partials at round start,
    /// plus mid-round delivery marks.
    visit: VisitBits,
    /// Fresh availability histogram rebuilds performed by naive-mode
    /// probes (telemetry; always zero on the indexed path).
    naive_probe_rebuilds: u64,
    /// Observational telemetry. Never consulted by simulation logic and
    /// never draws from [`Self::seeds`]: enabling it cannot change a
    /// run's results (pinned by the `telemetry_determinism` test).
    recorder: Recorder,
    /// Observational wall-clock phase timers (disabled by default). Like
    /// the recorder, never consulted by simulation logic and deliberately
    /// not checkpointed — enabling profiling cannot change a run's
    /// results (pinned by the `profile_byte_identity` tests).
    profiler: Profiler,
    /// Peers visited by the per-round allocation loop (deterministic
    /// work accounting, flushed as `swarm.work.peers_visited`).
    work_visited: u64,
    /// Visited peers that moved at least one byte
    /// (`swarm.work.peers_productive`).
    work_productive: u64,
    /// Total candidate-list length scanned across allocation visits
    /// (`swarm.work.candidate_scans`).
    work_candidate_scans: u64,
    /// True once any spawned mechanism declared [`SettleCadence::Epoch`]
    /// — the one-branch per-round gate that keeps the epoch-settlement
    /// pass free for the six per-transfer mechanisms.
    has_epoch_cadence: bool,
    /// Per-peer `on_epoch_close` invocations
    /// (`swarm.epoch.settlements`).
    epoch_settlements: u64,
    /// Rounds at which at least one mechanism settled
    /// (`swarm.epoch.boundaries`).
    epoch_boundaries: u64,
    /// Consensus-reputation bookkeeping, present once any spawned
    /// mechanism declared a [`coop_incentives::ConsensusPolicy`]. Drives
    /// the end-of-round report aggregation, strikes, and bans.
    consensus: Option<ConsensusState>,
    /// [`Totals::bytes_by_reason`] as of the previous round probe, for
    /// per-probe deltas.
    probe_prev_bytes: [u64; GrantReason::ALL.len()],
    /// The pre-drawn fault schedule ([`FaultSchedule::empty`] when no
    /// faults were configured — the round loop then takes exactly the
    /// fault-free branches).
    faults: FaultSchedule,
    /// Cursor into `faults.events()` (events are applied in order, once).
    fault_cursor: usize,
    /// Spec index → spawned peer id: fault events are keyed by spec index
    /// (stable across runs), resolved here at application time. Whitewash
    /// successor identities are not tracked — a fault targeting a retired
    /// identity is skipped.
    spec_peer: Vec<Option<PeerId>>,
    /// False once the fault schedule takes the seeder offline (failure
    /// round reached or the seeder-exit completion threshold crossed).
    seeder_online: bool,
    /// Set when the run terminated because the swarm became
    /// unsatisfiable (see [`SimResult::stalled`]).
    stalled: bool,
    /// [`Totals::uploaded_total`] at the end of the previous round, to
    /// detect quiescent rounds for stall detection.
    prev_uploaded_total: u64,
    totals: Totals,
    fairness_avg: TimeSeries,
    diversity: TimeSeries,
    fairness_stat: TimeSeries,
    bootstrapped_frac: TimeSeries,
    completed_frac: TimeSeries,
    susceptibility: TimeSeries,
    /// Capture a [`SimCheckpoint`] every K rounds (`None` = never).
    checkpoint_every: Option<u64>,
    /// The checkpoints captured so far this run.
    checkpoints: CheckpointLog,
}

impl Simulation {
    /// Starts a [`SimulationBuilder`](crate::SimulationBuilder) — the
    /// supported way to construct a simulation:
    ///
    /// ```ignore
    /// Simulation::builder(config).population(peers).build()?.run()
    /// ```
    pub fn builder(config: SwarmConfig) -> crate::SimulationBuilder {
        crate::SimulationBuilder::new(config)
    }

    /// Builds a simulation from a configuration and a population.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the configuration is invalid or the
    /// population fails the builder's eager checks.
    #[deprecated(
        since = "0.2.0",
        note = "use Simulation::builder(config).population(...).build()"
    )]
    pub fn new(config: SwarmConfig, population: Vec<PeerSpec>) -> Result<Self, ConfigError> {
        Simulation::builder(config)
            .population(population)
            .build()
            .map_err(|e| match e {
                crate::BuildError::Config(e) => e,
                other => ConfigError::new(other.to_string()),
            })
    }

    /// Assembles the simulation from already-validated parts (the
    /// builder's final step).
    pub(crate) fn assemble(
        config: SwarmConfig,
        population: Vec<PeerSpec>,
        recorder: Recorder,
        faults: FaultSchedule,
    ) -> Self {
        // `COOP_SWARM_DEBUG` is shorthand for "stream end-of-run state
        // dumps to stderr": when set and no recorder was supplied, spin up
        // one that keeps only `final`-category events and writes them as
        // JSONL to stderr (the structured successor of the old ad-hoc
        // eprintln dumps).
        let recorder = if !recorder.is_enabled() && std::env::var_os("COOP_SWARM_DEBUG").is_some()
        {
            let sampling = Category::ALL
                .iter()
                .fold(Sampling::keep_all(), |s, &c| s.every(c, 0))
                .every(Category::Final, 1);
            let mut r = Recorder::enabled(TelemetryConfig {
                probe_every: u64::MAX,
                ring_capacity: 0,
                sampling,
            });
            r.set_capture(false);
            r.add_sink(Box::new(coop_telemetry::StderrSink));
            r
        } else {
            recorder
        };
        let num_pieces = config.file.num_pieces();
        let rounds = RoundDriver::new(config.round);
        let mut engine = Engine::new();
        let expected_compliant = population.iter().filter(|s| s.tags.compliant).count();
        let specs: Vec<Option<PeerSpec>> = population.into_iter().map(Some).collect();
        for (i, spec) in specs.iter().enumerate() {
            let at = spec.as_ref().expect("just wrapped").arrival;
            engine.schedule(at, Event::Arrival(i));
        }
        // The first round is processed at the end of its window, after the
        // arrivals within it.
        engine.schedule(rounds.start_of(1), Event::RoundTick);
        let spec_count = specs.len();
        Simulation {
            seeds: SeedTree::new(config.seed),
            availability: AvailabilityIndex::new(num_pieces),
            transfers: TransferTable::new(),
            reputation: ReputationTable::new(),
            seeder_bf: Bitfield::full(num_pieces),
            rounds,
            engine,
            peers: Vec::new(),
            specs,
            round_idx: 0,
            now: SimTime::ZERO,
            expected_compliant,
            reports: ReportedReputation::new(),
            pretrusted: Vec::new(),
            trusted_cache: std::collections::HashMap::new(),
            adj: Vec::new(),
            adj_off: Vec::new(),
            adj_dirty: true,
            adjacency_rebuilds: 0,
            hot: HotPeers::default(),
            scratch_held: Bitfield::new(0),
            scratch_ties: Vec::new(),
            pending_arrivals: spec_count,
            open_active: 0,
            compliant_completed: 0,
            naive_hotpath: false,
            round_loop: RoundLoop::Dirty,
            shards: 1,
            dirty: DirtySet::new(),
            visit: VisitBits::default(),
            naive_probe_rebuilds: 0,
            recorder,
            profiler: Profiler::disabled(),
            work_visited: 0,
            work_productive: 0,
            work_candidate_scans: 0,
            has_epoch_cadence: false,
            epoch_settlements: 0,
            epoch_boundaries: 0,
            consensus: None,
            probe_prev_bytes: [0; GrantReason::ALL.len()],
            spec_peer: vec![None; spec_count],
            faults,
            fault_cursor: 0,
            seeder_online: true,
            stalled: false,
            prev_uploaded_total: 0,
            totals: Totals::default(),
            fairness_avg: TimeSeries::new(),
            diversity: TimeSeries::new(),
            fairness_stat: TimeSeries::new(),
            bootstrapped_frac: TimeSeries::new(),
            completed_frac: TimeSeries::new(),
            susceptibility: TimeSeries::new(),
            checkpoint_every: None,
            checkpoints: CheckpointLog::default(),
            config,
        }
    }

    /// Sets the checkpoint cadence (builder plumbing): capture a
    /// [`SimCheckpoint`] after every `k`-th completed round.
    pub(crate) fn set_checkpoint_every(&mut self, k: Option<u64>) {
        self.checkpoint_every = k.filter(|&k| k > 0);
    }

    /// Attaches the wall-clock profiler (builder plumbing).
    pub(crate) fn set_profiler(&mut self, profiler: Profiler) {
        self.profiler = profiler;
    }

    /// Selects the allocation-loop strategy (builder plumbing).
    pub(crate) fn set_round_loop(&mut self, round_loop: RoundLoop) {
        self.round_loop = round_loop;
    }

    /// Sets the intra-sim shard count (builder plumbing).
    pub(crate) fn set_shards(&mut self, k: usize) {
        self.shards = k.max(1);
    }

    /// Is the dirty-set visit filter live? The naive oracle bypasses
    /// every index, including this one.
    fn dirty_active(&self) -> bool {
        self.round_loop == RoundLoop::Dirty && !self.naive_hotpath
    }

    /// Marks a peer's allocation-relevant state changed: it (and its
    /// candidates, via CSR expansion at the next visit-set build) will be
    /// visited next round, and — because delivery during the allocation
    /// loop can make a later-in-order peer interested *this* round — its
    /// live visit bit is set too. Cheap no-op bookkeeping when the
    /// dirty loop is off; never called with the seeder.
    fn mark_dirty(&mut self, id: PeerId) {
        debug_assert_ne!(id, SEEDER_ID, "the seeder is not a peer slot");
        self.dirty.mark(id.index());
        self.visit.set(id.index());
    }

    /// Attaches a wall-clock profiler to a built simulation. Unlike
    /// [`SimulationBuilder::profiler`](crate::SimulationBuilder::profiler)
    /// this lets the caller time construction itself (the `exec.build`
    /// phase) on the same profiler before handing it over. Purely
    /// observational: results are identical with any profiler attached.
    #[must_use]
    pub fn with_profiler(mut self, profiler: Profiler) -> Self {
        self.profiler = profiler;
        self
    }

    /// The configuration.
    pub fn config(&self) -> &SwarmConfig {
        &self.config
    }

    /// The current round index.
    pub fn round(&self) -> u64 {
        self.round_idx
    }

    /// The peer state for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never assigned.
    pub fn peer(&self, id: PeerId) -> &PeerState {
        &self.peers[id.index() as usize]
    }

    /// Whether `id` refers to an active (arrived, not departed) peer.
    pub fn is_active(&self, id: PeerId) -> bool {
        if id == SEEDER_ID {
            return false;
        }
        self.peers
            .get(id.index() as usize)
            .is_some_and(|p| p.is_active())
    }

    /// Whether `id` can currently exchange bytes: active *and* not held
    /// dark by a fault-schedule outage. Identical to [`Self::is_active`]
    /// when no fault schedule is attached (no peer is ever offline), so
    /// every interaction path below uses this without perturbing
    /// fault-free runs.
    pub fn is_online(&self, id: PeerId) -> bool {
        if id == SEEDER_ID {
            return false;
        }
        self.peers
            .get(id.index() as usize)
            .is_some_and(|p| p.is_active() && !p.offline)
    }

    /// Global reputation of `id` (0 for unknown/departed identities).
    /// With `trusted_reputation` enabled this is the EigenTrust score
    /// (recomputed once per round); otherwise the raw claimed-upload
    /// total, which false praise can inflate.
    pub fn reputation_of(&self, id: PeerId) -> f64 {
        if let Some(c) = &self.consensus {
            // Consensus populations score by corroborated uploads only;
            // unilateral claims (and false praise) never credit.
            return c.score_of(id.index());
        }
        if self.config.trusted_reputation {
            self.trusted_cache.get(&id).copied().unwrap_or(0.0)
        } else {
            self.reputation.reputation(id)
        }
    }

    /// Is `id` serving a consensus-reputation ban this round? Always
    /// false for populations without a consensus mechanism.
    pub fn is_banned(&self, id: PeerId) -> bool {
        id != SEEDER_ID
            && self
                .consensus
                .as_ref()
                .is_some_and(|c| c.is_banned_slot(id.index(), self.round_idx))
    }

    /// Is a transfer currently in flight from `from` to `to`?
    pub fn has_transfer(&self, from: PeerId, to: PeerId) -> bool {
        self.transfers.get(from, to).is_some()
    }

    /// Does active peer `who` need at least one piece `from` can offer?
    /// (Delegates to [`shard::needs_with`], the single authority shared
    /// with the shard workers.)
    pub fn needs(&self, who: PeerId, from: PeerId) -> bool {
        shard::needs_with(
            &self.peers,
            &self.transfers,
            &self.seeder_bf,
            self.seeder_online,
            who,
            from,
        )
    }

    /// Runs the simulation to completion (all compliant peers finished or
    /// `max_rounds` reached) and returns the results.
    pub fn run(self) -> SimResult {
        self.run_traced().0
    }

    /// Runs the simulation and also returns what the attached telemetry
    /// [`Recorder`] gathered (an empty report when none was attached —
    /// see [`SimulationBuilder::recorder`](crate::SimulationBuilder::recorder)).
    pub fn run_traced(self) -> (SimResult, TelemetryReport) {
        let (result, report, _, _) = self.run_core();
        (result, report)
    }

    /// Runs the simulation and also returns what the attached wall-clock
    /// [`Profiler`] gathered (an empty report when none was attached —
    /// see [`SimulationBuilder::profiler`](crate::SimulationBuilder::profiler)).
    ///
    /// Profiling is observational: results are byte-identical with the
    /// profiler enabled, disabled, or sampling at any cadence.
    pub fn run_profiled(self) -> (SimResult, TelemetryReport, ProfileReport) {
        let (result, report, profile, _) = self.run_core();
        (result, report, profile)
    }

    /// Runs the simulation and also returns the [`CheckpointLog`] of
    /// mid-run snapshots captured at the cadence set by
    /// [`SimulationBuilder::checkpoint_every`](crate::SimulationBuilder::checkpoint_every)
    /// (an empty log when no cadence was set).
    ///
    /// Checkpointing is observational: results are identical with any
    /// cadence, including none (pinned by the `checkpoint_equivalence`
    /// test battery).
    pub fn run_checkpointed(self) -> (SimResult, TelemetryReport, CheckpointLog) {
        let (result, report, _, checkpoints) = self.run_core();
        (result, report, checkpoints)
    }

    fn run_core(mut self) -> (SimResult, TelemetryReport, ProfileReport, CheckpointLog) {
        let run_t = self.profiler.start();
        let deadline = self.rounds.start_of(self.config.max_rounds + 1);
        let mut engine = std::mem::take(&mut self.engine);
        engine.run_until(deadline, |now, ev, eng| self.handle(now, ev, eng));
        self.engine = engine;
        let checkpoints = std::mem::take(&mut self.checkpoints);
        let (result, report, profile) = self.finalize(run_t);
        (result, report, profile, checkpoints)
    }

    /// Restores a mid-run checkpoint onto this freshly built simulation,
    /// returning it positioned to resume right after the checkpointed
    /// round. Finishing the restored run yields a [`SimResult`] exactly
    /// equal to the straight-through run's.
    ///
    /// The receiver must be freshly built (never run) from the same
    /// configuration and a population of the same shape; it re-supplies
    /// what a checkpoint deliberately does not carry — the unspawned
    /// arrival specs (mechanism factories are closures) and the telemetry
    /// recorder.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::NotFresh`] if this simulation already ran,
    /// [`CheckpointError::ConfigMismatch`] /
    /// [`CheckpointError::PopulationMismatch`] if it was built from a
    /// different config or population shape.
    pub fn restore(mut self, checkpoint: &SimCheckpoint) -> Result<Simulation, CheckpointError> {
        if self.round_idx != 0 || !self.peers.is_empty() {
            return Err(CheckpointError::NotFresh);
        }
        let s = &*checkpoint.state;
        if self.config != s.config {
            return Err(CheckpointError::ConfigMismatch);
        }
        if self.specs.len() != s.spec_peer.len() {
            return Err(CheckpointError::PopulationMismatch {
                expected: s.spec_peer.len(),
                found: self.specs.len(),
            });
        }
        // Peers that had spawned by checkpoint time travel in `peers`;
        // their Arrival events are gone from the captured queue, so their
        // specs must not fire again.
        for (i, spawned) in s.spec_peer.iter().enumerate() {
            if spawned.is_some() {
                self.specs[i] = None;
            }
        }
        self.engine = s.engine.clone().restore();
        self.seeds = SeedTree::import(s.seed_state);
        self.peers = s.peers.clone();
        self.availability = s.availability.clone();
        self.transfers = s.transfers.clone();
        self.reputation = s.reputation.clone();
        self.seeder_bf = s.seeder_bf.clone();
        self.round_idx = s.round_idx;
        self.now = s.now;
        self.expected_compliant = s.expected_compliant;
        self.reports = s.reports.clone();
        self.pretrusted = s.pretrusted.clone();
        self.trusted_cache = s.trusted_cache.clone();
        self.adj = s.adj.clone();
        self.adj_off = s.adj_off.clone();
        self.adj_dirty = s.adj_dirty;
        self.adjacency_rebuilds = s.adjacency_rebuilds;
        self.hot = s.hot.clone();
        self.pending_arrivals = s.pending_arrivals;
        self.open_active = s.open_active;
        self.compliant_completed = s.compliant_completed;
        self.naive_hotpath = s.naive_hotpath;
        for &d in &s.dirty {
            self.dirty.mark(d);
        }
        self.naive_probe_rebuilds = s.naive_probe_rebuilds;
        self.work_visited = s.work_visited;
        self.work_productive = s.work_productive;
        self.work_candidate_scans = s.work_candidate_scans;
        self.epoch_settlements = s.epoch_settlements;
        self.epoch_boundaries = s.epoch_boundaries;
        self.consensus = s.consensus.clone();
        // Derived gate: recomputed from the restored peers (future
        // arrivals re-set it through `spawn_peer` as usual).
        self.has_epoch_cadence = self.peers.iter().any(|p| {
            p.mechanism
                .as_ref()
                .is_some_and(|m| matches!(m.settle_cadence(), SettleCadence::Epoch(_)))
        });
        self.probe_prev_bytes = s.probe_prev_bytes;
        self.faults = s.faults.clone();
        self.fault_cursor = s.fault_cursor;
        self.spec_peer = s.spec_peer.clone();
        self.seeder_online = s.seeder_online;
        self.stalled = s.stalled;
        self.prev_uploaded_total = s.prev_uploaded_total;
        self.totals = s.totals;
        self.fairness_avg = s.fairness_avg.clone();
        self.diversity = s.diversity.clone();
        self.fairness_stat = s.fairness_stat.clone();
        self.bootstrapped_frac = s.bootstrapped_frac.clone();
        self.completed_frac = s.completed_frac.clone();
        self.susceptibility = s.susceptibility.clone();
        // Scratch buffers, the round driver, the recorder, the profiler,
        // and the checkpoint settings stay as built: the first two are
        // config-derived or lazily sized, the rest are deliberately not
        // simulation state (observation travels with the run, not the
        // checkpoint).
        Ok(self)
    }

    /// Deep-copies the entire live state — including the in-flight engine
    /// queue `eng` (`self.engine` is empty while the run loop owns it) —
    /// into the checkpoint log.
    fn capture_checkpoint(&mut self, eng: &Engine<Event>) {
        let round = self.round_idx;
        self.recorder.incr("swarm.checkpoints", 1);
        self.recorder.emit_with(|| TraceEvent::Checkpoint { round });
        let state = CheckpointState {
            config: self.config.clone(),
            engine: eng.snapshot(),
            seed_state: self.seeds.export(),
            peers: self.peers.clone(),
            availability: self.availability.clone(),
            transfers: self.transfers.clone(),
            reputation: self.reputation.clone(),
            seeder_bf: self.seeder_bf.clone(),
            round_idx: self.round_idx,
            now: self.now,
            expected_compliant: self.expected_compliant,
            reports: self.reports.clone(),
            pretrusted: self.pretrusted.clone(),
            trusted_cache: self.trusted_cache.clone(),
            adj: self.adj.clone(),
            adj_off: self.adj_off.clone(),
            adj_dirty: self.adj_dirty,
            adjacency_rebuilds: self.adjacency_rebuilds,
            hot: self.hot.clone(),
            pending_arrivals: self.pending_arrivals,
            open_active: self.open_active,
            compliant_completed: self.compliant_completed,
            naive_hotpath: self.naive_hotpath,
            dirty: self.dirty.snapshot_sorted(),
            naive_probe_rebuilds: self.naive_probe_rebuilds,
            work_visited: self.work_visited,
            work_productive: self.work_productive,
            work_candidate_scans: self.work_candidate_scans,
            epoch_settlements: self.epoch_settlements,
            epoch_boundaries: self.epoch_boundaries,
            consensus: self.consensus.clone(),
            probe_prev_bytes: self.probe_prev_bytes,
            faults: self.faults.clone(),
            fault_cursor: self.fault_cursor,
            spec_peer: self.spec_peer.clone(),
            seeder_online: self.seeder_online,
            stalled: self.stalled,
            prev_uploaded_total: self.prev_uploaded_total,
            totals: self.totals,
            fairness_avg: self.fairness_avg.clone(),
            diversity: self.diversity.clone(),
            fairness_stat: self.fairness_stat.clone(),
            bootstrapped_frac: self.bootstrapped_frac.clone(),
            completed_frac: self.completed_frac.clone(),
            susceptibility: self.susceptibility.clone(),
        };
        self.checkpoints.record(SimCheckpoint {
            state: Box::new(state),
        });
    }

    fn handle(&mut self, now: SimTime, ev: Event, eng: &mut Engine<Event>) {
        self.now = now;
        match ev {
            Event::Arrival(idx) => {
                let t = self.profiler.start();
                self.spawn_peer(idx, now);
                self.profiler.stop(phase::SIM_ARRIVALS, t);
            }
            Event::RoundTick => {
                self.round_idx = self.rounds.round_of(now).saturating_sub(1);
                self.step_round(now);
                self.round_idx += 1;
                let close_t = self.profiler.start();
                // Non-compliant peers may never finish (a strict mechanism
                // can starve them forever), so they don't hold the run open
                // — except whitewashers: their identity churn is the very
                // dynamic under measurement, and each chain is finite (an
                // identity either hits its interval or completes, and the
                // successor chain ends at the first identity that downloads
                // nothing itself).
                let all_done = if self.naive_hotpath {
                    self.specs.iter().all(|s| s.is_none())
                        && self.peers.iter().all(|p| {
                            !p.is_active()
                                || !(p.tags.compliant || p.tags.whitewash_interval.is_some())
                        })
                } else {
                    debug_assert_eq!(
                        self.pending_arrivals == 0 && self.open_active == 0,
                        self.specs.iter().all(|s| s.is_none())
                            && self.peers.iter().all(|p| {
                                !p.is_active()
                                    || !(p.tags.compliant || p.tags.whitewash_interval.is_some())
                            }),
                        "run-open counters diverged from the peer scan"
                    );
                    self.pending_arrivals == 0 && self.open_active == 0
                };
                // Stall detection (fault schedules only): when a round
                // moved no bytes and some run-holding peer wants a piece
                // no live source will ever offer again (its last copy
                // departed), the run can never reach `all_done` — stop
                // now with a `Stalled` outcome instead of spinning to
                // `max_rounds`.
                let moved = self.totals.uploaded_total() != self.prev_uploaded_total;
                self.prev_uploaded_total = self.totals.uploaded_total();
                if !all_done
                    && !moved
                    && !self.faults.is_inert()
                    && self.swarm_unsatisfiable()
                {
                    self.stalled = true;
                    self.recorder.incr("swarm.fault.stalls", 1);
                    self.record_fault("stalled", u32::MAX, 0);
                } else if !all_done && self.round_idx < self.config.max_rounds {
                    eng.schedule(self.rounds.start_of(self.round_idx + 1), Event::RoundTick);
                    // Capture after the next tick is queued so the restored
                    // engine resumes at round `round_idx + 1` exactly.
                    if let Some(k) = self.checkpoint_every {
                        if self.round_idx.is_multiple_of(k) {
                            self.capture_checkpoint(eng);
                        }
                    }
                }
                self.profiler.stop(phase::SIM_ROUND_CLOSE, close_t);
            }
        }
    }

    fn spawn_peer(&mut self, idx: usize, now: SimTime) {
        let spec = self.specs[idx].take().expect("arrival fires once");
        let id = PeerId::new(self.peers.len() as u32);
        // Peer ids follow spawn order, not spec order (staggered arrivals
        // interleave); fault events are keyed by spec index and resolved
        // through this map.
        self.spec_peer[idx] = Some(id);
        let mechanism = (spec.mechanism)();
        if matches!(mechanism.settle_cadence(), SettleCadence::Epoch(_)) {
            self.has_epoch_cadence = true;
        }
        if let Some(policy) = mechanism.consensus_policy() {
            if self.consensus.is_none() {
                self.consensus = Some(ConsensusState::new(policy));
            }
        }
        let mut peer = PeerState::new(
            id,
            spec.capacity_bps,
            spec.tags,
            now,
            self.rounds.round_of(now),
            self.config.file.num_pieces(),
            mechanism,
        );
        // EigenTrust's premise is that pre-trusted peers are operator-chosen
        // known-good nodes (the original moderators). Only compliant peers
        // qualify: letting early-arriving attackers into the root set would
        // make their mutual praise trusted by construction, defeating the
        // defense the paper's Table III evaluates.
        if spec.tags.compliant && self.pretrusted.len() < self.config.pretrusted_count {
            self.pretrusted.push(id);
        }
        let neighbors = self.choose_neighbors(id, spec.tags.large_view);
        for &n in &neighbors {
            self.peers[n.index() as usize].neighbors.insert(id);
        }
        peer.neighbors = neighbors;
        // Existing large-view peers connect to every newcomer.
        let large_viewers: Vec<PeerId> = self
            .peers
            .iter()
            .filter(|p| p.is_active() && p.tags.large_view)
            .map(|p| p.id)
            .collect();
        for lv in large_viewers {
            peer.neighbors.insert(lv);
            self.peers[lv.index() as usize].neighbors.insert(id);
        }
        self.peers.push(peer);
        self.hot.push(&spec.tags, 0);
        self.pending_arrivals -= 1;
        if spec.tags.compliant || spec.tags.whitewash_interval.is_some() {
            self.open_active += 1;
        }
        self.adj_dirty = true;
        // CSR expansion of this mark covers the newcomer's edge partners,
        // whose interest in (and from) it just appeared.
        self.mark_dirty(id);
    }

    fn choose_neighbors(&self, me: PeerId, large_view: bool) -> BTreeSet<PeerId> {
        let active: Vec<PeerId> = self
            .peers
            .iter()
            .filter(|p| p.is_active() && p.id != me && !self.is_banned(p.id))
            .map(|p| p.id)
            .collect();
        if large_view {
            return active.into_iter().collect();
        }
        let mut rng = self.seeds.subtree(0xA771).rng(u64::from(me.index()));
        let mut pool = active;
        pool.shuffle(&mut rng);
        pool.truncate(self.config.neighbor_degree);
        pool.into_iter().collect()
    }

    fn round_rng(&self, label: u64) -> impl RngCore {
        self.seeds.subtree(0x520_0000 + self.round_idx).rng(label)
    }

    /// Ensures the per-peer active-neighbor candidate lists are current.
    ///
    /// Called once before the allocation loop and once before the
    /// end-of-round mechanism hooks: the active set and neighbor graph only
    /// change in the passes *bracketing* those phases (whitewashing,
    /// replenishment, departures), so within each phase every [`SimView`]
    /// can borrow the same precomputed slice instead of re-filtering the
    /// neighbor set on each query. Unlike the old per-round rebuild, the
    /// flat adjacency is only reconstructed when [`Self::adj_dirty`] says a
    /// membership or status mutation actually invalidated it — quiet
    /// rounds skip the rebuild entirely.
    fn refresh_candidates(&mut self) {
        if self.naive_hotpath || self.adj_dirty || self.adj_off.len() != self.peers.len() + 1 {
            self.rebuild_adjacency();
        }
    }

    /// Rebuilds the flat CSR adjacency from scratch. Lists are in
    /// `BTreeSet` iteration order, identical to the old per-peer vectors.
    fn rebuild_adjacency(&mut self) {
        self.adjacency_rebuilds += 1;
        self.adj_dirty = false;
        let round = self.round_idx;
        let consensus = self.consensus.as_ref();
        let banned = |id: PeerId| consensus.is_some_and(|c| c.is_banned_slot(id.index(), round));
        let (peers, adj, off) = (&self.peers, &mut self.adj, &mut self.adj_off);
        adj.clear();
        off.clear();
        off.reserve(peers.len() + 1);
        off.push(0);
        for p in peers {
            // Banned peers are evicted from the candidate graph in both
            // directions: they serve no one and no one serves them.
            if p.is_active() && !p.offline && !banned(p.id) {
                adj.extend(p.neighbors.iter().copied().filter(|&n| {
                    n == SEEDER_ID
                        || (peers
                            .get(n.index() as usize)
                            .is_some_and(|q| q.is_active() && !q.offline)
                            && !banned(n))
                }));
            }
            off.push(adj.len() as u32);
        }
    }

    /// This round's active neighbors of `id`, as maintained by
    /// [`Self::refresh_candidates`].
    pub(crate) fn round_candidates(&self, id: PeerId) -> &[PeerId] {
        let i = id.index() as usize;
        match (self.adj_off.get(i), self.adj_off.get(i + 1)) {
            (Some(&a), Some(&b)) => &self.adj[a as usize..b as usize],
            _ => &[],
        }
    }

    /// Rebuilds the live visit bitmap for this round: the drained dirty
    /// set, its CSR-adjacent candidates (a dirty peer's state change can
    /// re-interest exactly its adjacency row — edges are symmetric), and
    /// every uploader with an outgoing partial transfer (it must drain
    /// regardless of interest). With `--shards K` the CSR expansion fans
    /// out over contiguous ranges of the *sorted* dirty ids onto scoped
    /// threads whose per-thread bitmaps are OR-merged — a commutative
    /// reduction, so the result is identical for any K.
    fn build_visit_set(&mut self) {
        let scan_t = self.profiler.start();
        self.visit.clear(self.peers.len());
        let dirty = self.dirty.drain_sorted();
        if self.shards > 1 && dirty.len() >= SHARD_MIN_ITEMS {
            let ranges = shard_ranges(dirty.len(), self.shards);
            let (adj, adj_off) = (&self.adj, &self.adj_off);
            let partials: Vec<VisitBits> = std::thread::scope(|scope| {
                let handles: Vec<_> = ranges
                    .into_iter()
                    .map(|r| {
                        let chunk = &dirty[r];
                        scope.spawn(move || {
                            let mut bits = VisitBits::default();
                            bits.clear(adj_off.len().saturating_sub(1));
                            for &d in chunk {
                                bits.set(d);
                                for &nb in shard::candidates_of(adj, adj_off, d) {
                                    if nb != SEEDER_ID {
                                        bits.set(nb.index());
                                    }
                                }
                            }
                            bits
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard worker panicked"))
                    .collect()
            });
            let merge_t = self.profiler.start();
            for part in &partials {
                self.visit.merge(part);
            }
            self.profiler.stop(phase::SIM_SHARD_MERGE, merge_t);
        } else {
            let (adj, adj_off, visit) = (&self.adj, &self.adj_off, &mut self.visit);
            for &d in &dirty {
                visit.set(d);
                for &nb in shard::candidates_of(adj, adj_off, d) {
                    if nb != SEEDER_ID {
                        visit.set(nb.index());
                    }
                }
            }
        }
        // An uploader's own visit is the only place `targets_of` drains;
        // a peer can't gain outgoing partials without being visited, so
        // seeding them at build time is sufficient. `uploaders()` is
        // unordered — harmless, bitmap insertion commutes.
        for up in self.transfers.uploaders() {
            if up != SEEDER_ID {
                self.visit.set(up.index());
            }
        }
        self.profiler.stop(phase::SIM_DIRTY_SCAN, scan_t);
    }

    fn step_round(&mut self, now: SimTime) {
        let t = self.profiler.start();
        self.apply_faults_pass(now);
        self.profiler.stop(phase::SIM_FAULTS, t);

        let t = self.profiler.start();
        self.whitewash_pass(now);
        self.collusion_praise_pass();
        // Advance the report ledger's decay clock before any claim is
        // recorded or read this round.
        self.reports.advance_to(self.round_idx);
        if self.config.trusted_reputation {
            self.trusted_cache = self.reports.trusted_scores(&self.pretrusted);
        }
        self.profiler.stop(phase::SIM_IDENTITY, t);

        let t = self.profiler.start();
        self.replenish_neighbors();
        self.refresh_candidates();
        self.profiler.stop(phase::SIM_ADJACENCY, t);

        let t = self.profiler.start();
        if self.dirty_active() {
            self.build_visit_set();
        }
        self.seeder_allocate(now);

        // Peers allocate in a per-round shuffled order.
        let mut order: Vec<u32> = if self.naive_hotpath {
            self.peers
                .iter()
                .filter(|p| p.is_active() && !p.offline)
                .map(|p| p.id.index())
                .collect()
        } else {
            let order: Vec<u32> = (0..self.hot.len())
                .filter(|&i| self.hot.is_online(i))
                .map(|i| i as u32)
                .collect();
            debug_assert_eq!(
                order,
                self.peers
                    .iter()
                    .filter(|p| p.is_active() && !p.offline)
                    .map(|p| p.id.index())
                    .collect::<Vec<u32>>(),
                "SoA allocation order diverged from the peer scan"
            );
            order
        };
        {
            let mut rng = self.round_rng(0);
            order.shuffle(&mut rng);
        }
        self.recorder
            .observe("swarm.round.active_set", order.len() as u64);
        // The dirty filter is evaluated per-visit against the *live* visit
        // bits and obligation flags — never pre-applied to `order` —
        // because a delivery earlier in the shuffled order can make a
        // later peer interested (or obliged) within the same round.
        // Skipped peers are provably no-ops (see [`RoundLoop::Dirty`]), so
        // `work_visited` counts only real visits here: the shrinking
        // `wasted_visit_ratio` is the dirty loop's own acceptance gate.
        let filter = self.dirty_active();
        for pid in order {
            if filter {
                debug_assert_eq!(
                    self.hot.is_obliged(pid as usize),
                    !self.peers[pid as usize].obligations.is_empty(),
                    "obliged flag diverged from the obligation list"
                );
                if !self.visit.get(pid) && !self.hot.is_obliged(pid as usize) {
                    continue;
                }
            }
            self.work_visited += 1;
            if self.allocate_and_execute(PeerId::new(pid), now) > 0 {
                self.work_productive += 1;
            }
        }
        self.profiler.stop(phase::SIM_ALLOCATE, t);

        let t = self.profiler.start();
        self.stalled_transfers_pass();
        self.obligations_pass(now);
        self.completions_pass(now);
        self.profiler.stop(phase::SIM_SETTLE, t);

        let t = self.profiler.start();
        self.end_round_pass();
        self.profiler.stop(phase::SIM_END_ROUND, t);

        let t = self.profiler.start();
        if self.round_idx.is_multiple_of(self.config.sample_every) {
            self.sample_metrics(now);
        }
        self.recorder.incr("swarm.rounds", 1);
        if self.recorder.probe_due(self.round_idx) {
            self.round_probe(now);
        }
        self.profiler.stop(phase::SIM_SAMPLE, t);
    }

    /// Emits one [`TraceEvent::RoundProbe`] snapshot (only called on the
    /// recorder's probe cadence, so the gathering below is off the
    /// common path entirely).
    fn round_probe(&mut self, now: SimTime) {
        let round = self.round_idx;
        let sim_s = now.as_secs_f64();
        let mut active = 0u64;
        let mut bootstrapped = 0u64;
        let mut completed = 0u64;
        for p in &self.peers {
            if p.is_active() {
                active += 1;
            }
            if p.tags.compliant {
                if p.bootstrap_time.is_some() {
                    bootstrapped += 1;
                }
                if matches!(p.departure, Some(Departure::Completed(_))) {
                    completed += 1;
                }
            }
        }
        let inflight = self.transfers.len() as u64;
        let bytes_by_reason_delta: Vec<u64> = self
            .totals
            .bytes_by_reason
            .iter()
            .zip(self.probe_prev_bytes.iter())
            .map(|(now, prev)| now - prev)
            .collect();
        self.probe_prev_bytes = self.totals.bytes_by_reason;
        let availability_buckets = if self.naive_hotpath {
            // The pre-index path: recount every piece into a fresh
            // histogram on each probe.
            self.naive_probe_rebuilds += 1;
            let mut availability = Histogram::new();
            for piece in 0..self.availability.map().num_pieces() {
                availability.observe(u64::from(self.availability.map().count(piece)));
            }
            availability.buckets().to_vec()
        } else {
            let buckets = self.availability.bucket_counts();
            #[cfg(debug_assertions)]
            {
                let mut check = Histogram::new();
                for piece in 0..self.availability.map().num_pieces() {
                    check.observe(u64::from(self.availability.map().count(piece)));
                }
                debug_assert_eq!(
                    buckets,
                    check.buckets().to_vec(),
                    "incremental availability buckets diverged from a fresh recount"
                );
            }
            buckets
        };
        self.recorder.observe("swarm.probe.active_peers", active);
        self.recorder
            .observe("swarm.probe.inflight_transfers", inflight);
        self.recorder.emit_with(|| TraceEvent::RoundProbe {
            round,
            sim_s,
            active,
            bootstrapped,
            completed,
            inflight,
            bytes_by_reason_delta,
            availability_buckets,
        });
    }

    /// Returns the bytes this visit actually moved (drained plus newly
    /// granted) — the signal behind the `swarm.work.peers_productive`
    /// counter.
    fn allocate_and_execute(&mut self, id: PeerId, now: SimTime) -> u64 {
        let idx = id.index() as usize;
        if !self.peers[idx].is_active() || self.peers[idx].offline {
            return 0;
        }
        // A banned uploader is skipped wholesale, before the drain and
        // before any RNG could be touched, so every round-loop mode (and
        // any dirty/visit state) takes exactly the same branch. Its
        // outgoing partials stall out; in-flight transfers *to* banned
        // peers are allowed to finish.
        if self.is_banned(id) {
            return 0;
        }
        let budget = self.config.bytes_per_round(self.peers[idx].capacity_bps);
        if budget == 0 {
            return 0;
        }
        // Drain committed partial transfers before allocating new ones: a
        // real client finishes the requests it has already accepted, which
        // is what keeps partially transferred pieces from being abandoned
        // when the policy's targets rotate.
        let drained = self.drain_partials(id, now).min(budget);
        let budget = budget - drained;
        if budget == 0 {
            // Draining ate the whole budget, so the no-op pre-check below
            // never ran: conservatively re-mark so next round's visit set
            // still holds this peer (indexed mode would call its
            // mechanism then).
            if self.dirty_active() {
                self.mark_dirty(id);
            }
            return drained;
        }
        if self.dirty_active() {
            // The skip test, evaluated at visit time: a peer with no
            // interested candidate and no pending obligations is exactly
            // the state in which every built-in mechanism early-returns
            // without drawing RNG or mutating anything — skipping it is
            // unobservable. Obliged-only peers are re-visited through the
            // live obliged flag instead (obligations can be granted
            // toward non-neighbors, so interest does not cover them).
            let interested = self
                .round_candidates(id)
                .iter()
                .any(|&c| self.needs(c, id));
            if interested {
                // Stateful mechanisms may decide differently next round
                // on identical inputs (unchoke rotations, sticky
                // targets), so interest alone re-marks them. A
                // memoryless mechanism repeats a grantless decision
                // verbatim until an input changes: leave it unmarked and
                // let the productive re-mark below — or any mark site
                // firing on an input change — resurrect it.
                let memoryless = self.peers[idx]
                    .mechanism
                    .as_ref()
                    .expect("mechanism present outside allocation")
                    .allocate_is_memoryless();
                if !memoryless {
                    self.mark_dirty(id);
                }
            } else if self.peers[idx].obligations.is_empty() {
                return drained;
            }
        }
        self.work_candidate_scans += self.round_candidates(id).len() as u64;
        let mut mech = self.peers[idx]
            .mechanism
            .take()
            .expect("mechanism present outside allocation");
        let grants = {
            let view = SimView::new(&*self, id);
            let mut rng = self
                .seeds
                .subtree(0x520_0000 + self.round_idx)
                .rng(2 + 2 * u64::from(id.index()));
            mech.allocate(&view, budget, &mut rng)
        };
        self.peers[idx].mechanism = Some(mech);

        let mut exec_rng = self
            .seeds
            .subtree(0x520_0000 + self.round_idx)
            .rng(3 + 2 * u64::from(id.index()));
        let mut remaining = budget;
        for g in grants {
            if remaining == 0 {
                break;
            }
            let bytes = g.bytes.min(remaining);
            let used = self.execute_grant(id, g.to, bytes, g.reason, g.condition, now, &mut exec_rng);
            remaining -= used;
        }
        let granted = budget - remaining;
        if granted > 0 && self.dirty_active() {
            // A productive visit changed this peer's own ledgers and may
            // leave credit or budget unspent — always worth revisiting
            // (idempotent for the stateful mechanisms marked above; the
            // path that keeps productive memoryless peers alive).
            self.mark_dirty(id);
        }
        drained + granted
    }

    /// Progresses this uploader's existing partial transfers (oldest-pair
    /// first in id order), spending up to one round's budget. Returns the
    /// bytes consumed.
    fn drain_partials(&mut self, from: PeerId, now: SimTime) -> u64 {
        let budget = if from == SEEDER_ID {
            self.config.bytes_per_round(self.config.seeder_bps)
        } else {
            self.config
                .bytes_per_round(self.peers[from.index() as usize].capacity_bps)
        };
        let mut used = 0;
        let mut rng = self
            .seeds
            .subtree(0x520_0000 + self.round_idx)
            .rng(0xD0A1 ^ u64::from(if from == SEEDER_ID { u32::MAX } else { from.index() }));
        for to in self.transfers.targets_of(from) {
            if used >= budget {
                break;
            }
            used += self.execute_grant_inner(
                from,
                to,
                budget - used,
                GrantReason::Seeding, // unused on continuation
                None,
                now,
                &mut rng,
                false,
            );
        }
        used
    }

    /// Applies up to `bytes` of upload from `from` toward `to`, continuing
    /// or starting piece transfers. Returns the bytes actually consumed.
    #[allow(clippy::too_many_arguments)]
    fn execute_grant(
        &mut self,
        from: PeerId,
        to: PeerId,
        bytes: u64,
        reason: GrantReason,
        condition: Option<ReciprocationCondition>,
        now: SimTime,
        rng: &mut dyn RngCore,
    ) -> u64 {
        self.execute_grant_inner(from, to, bytes, reason, condition, now, rng, true)
    }

    /// Core grant execution; with `start_new = false` only existing
    /// partials are progressed (the drain-first pass).
    #[allow(clippy::too_many_arguments)]
    fn execute_grant_inner(
        &mut self,
        from: PeerId,
        to: PeerId,
        bytes: u64,
        reason: GrantReason,
        condition: Option<ReciprocationCondition>,
        now: SimTime,
        rng: &mut dyn RngCore,
        start_new: bool,
    ) -> u64 {
        if to == from || to == SEEDER_ID || !self.is_online(to) {
            return 0;
        }
        let mut left = bytes;
        let mut used = 0;
        let mut started_new = false;
        let mut effective_reason = reason;
        while left > 0 {
            if self.transfers.get(from, to).is_some() {
                let remaining = self
                    .transfers
                    .get(from, to)
                    .expect("just checked")
                    .remaining();
                let step = left.min(remaining);
                let reason = self
                    .transfers
                    .get(from, to)
                    .expect("just checked")
                    .reason;
                effective_reason = reason;
                self.account_bytes(from, to, step);
                self.totals.bytes_by_reason[reason.index()] += step;
                if let Some(done) = self.transfers.progress(from, to, step, self.round_idx) {
                    // Per-link message loss: a pure hash of (loss_seed,
                    // link, piece, round) — a no-op single branch when the
                    // schedule carries no loss probability.
                    let from_raw = if from == SEEDER_ID { u32::MAX } else { from.index() };
                    if self
                        .faults
                        .drops_piece(from_raw, to.index(), done.piece, self.round_idx)
                    {
                        self.drop_delivery(to, done);
                    } else {
                        self.deliver(from, to, done, now);
                    }
                }
                left -= step;
                used += step;
                continue;
            }
            if !start_new {
                break;
            }
            // Start a new transfer if the target still needs something we
            // (or the seeder) can offer. Conditional (T-Chain) transfers
            // respect the receiver's reciprocation-backlog cap with
            // real-time counts — per-round candidate filtering alone races
            // when several uploaders pick the same target in one round.
            if condition.is_some() {
                let r = &self.peers[to.index() as usize];
                if r.obligations.len() + r.inflight_conditional
                    >= self.config.mechanism_params.tchain_max_backlog
                {
                    break;
                }
            }
            let pick_t = self.profiler.start();
            let picked = self.pick_piece(from, to, rng);
            self.profiler.stop(phase::SIM_PIECE_PICK, pick_t);
            let Some((piece, len)) = picked else {
                break;
            };
            self.peers[to.index() as usize].inflight.insert(piece);
            if condition.is_some() {
                self.peers[to.index() as usize].inflight_conditional += 1;
            }
            started_new = true;
            effective_reason = reason;
            self.transfers.start(
                from,
                to,
                InFlight {
                    piece,
                    piece_len: len,
                    bytes_done: 0,
                    condition,
                    reason,
                    last_progress_round: self.round_idx,
                },
            );
        }
        // Observational only — one branch when telemetry is disabled.
        if self.recorder.is_enabled() && (used > 0 || started_new) {
            self.record_grant(from, to, used, effective_reason, started_new);
        }
        used
    }

    /// Telemetry bookkeeping for one executed grant (recorder known to be
    /// enabled; kept out of line so the grant hot path stays compact).
    fn record_grant(
        &mut self,
        from: PeerId,
        to: PeerId,
        used: u64,
        reason: GrantReason,
        started_new: bool,
    ) {
        self.recorder.incr("swarm.grants", 1);
        self.recorder.incr("swarm.granted_bytes", used);
        if started_new {
            self.recorder.incr("swarm.transfers_started", 1);
        }
        let round = self.round_idx;
        self.recorder.emit_sampled(Category::Grant, || TraceEvent::Grant {
            round,
            from: from.index(),
            to: to.index(),
            bytes: used,
            reason: reason.name(),
            new_transfer: started_new,
        });
    }

    fn pick_piece(&mut self, from: PeerId, to: PeerId, rng: &mut dyn RngCore) -> Option<(u32, u64)> {
        // The picker treats the downloader bitfield as "pieces already
        // held"; in-flight pieces count as held so they are not fetched
        // twice. The scratch bitfield is moved out and refilled in place
        // (rather than cloning the downloader's bitfield) so repeated piece
        // selections within a round allocate nothing.
        let mut held = std::mem::replace(&mut self.scratch_held, Bitfield::new(0));
        held.copy_from(self.peer(to).offer());
        for &p in &self.peer(to).inflight {
            held.set(p);
        }
        let mut ties = std::mem::take(&mut self.scratch_ties);
        let offer = if from == SEEDER_ID {
            &self.seeder_bf
        } else {
            self.peer(from).offer()
        };
        let selection = match self.config.piece_strategy {
            PieceStrategy::RarestFirst => {
                if self.naive_hotpath {
                    // The pre-index path: per-bit missing-piece walk with a
                    // fresh tie vector per call.
                    RarestFirstPicker.pick(&held, offer, self.availability.map(), rng)
                } else {
                    // Word-skipping walk over the incremental index; draws
                    // from `rng` exactly as the naive picker does (pinned
                    // by the `availability_index` proptests).
                    self.availability.pick_rarest_into(&held, offer, &mut ties, rng)
                }
            }
            PieceStrategy::Random => {
                RandomFirstPicker.pick(&held, offer, self.availability.map(), rng)
            }
            PieceStrategy::Sequential => {
                SequentialPicker.pick(&held, offer, self.availability.map(), rng)
            }
        };
        self.scratch_ties = ties;
        self.scratch_held = held;
        match selection {
            PieceSelection::Piece(p) => Some((p, self.config.file.piece_len(p))),
            PieceSelection::NothingNeeded => None,
        }
    }

    /// Byte-granular transfer accounting, applied as progress happens so
    /// rate-based policies (BitTorrent's tit-for-tat ranking, FairTorrent's
    /// deficits) observe smooth rates rather than lumpy piece-completion
    /// spikes.
    fn account_bytes(&mut self, from: PeerId, to: PeerId, bytes: u64) {
        if bytes == 0 {
            return;
        }
        // Ledger movement is an allocate input for the receiving end:
        // credit grows with every partial step, not just at delivery,
        // which can flip a memoryless mechanism's grantless decision.
        // (The sender re-marks itself through the productive-visit path,
        // and uploaders with open partials are seeded into every visit
        // set.)
        if self.dirty_active() {
            self.mark_dirty(to);
        }
        if from == SEEDER_ID {
            self.totals.uploaded_seeder += bytes;
        } else {
            let s = &mut self.peers[from.index() as usize];
            if s.tags.compliant {
                self.totals.uploaded_compliant += bytes;
            } else {
                self.totals.uploaded_freeriders += bytes;
            }
        }
        if !self.peers[to.index() as usize].tags.compliant {
            self.totals.freerider_received_raw += bytes;
        }
        self.settle_transfer(from, to, bytes);
    }

    /// The per-transfer settlement entry point: the *only* place moved
    /// bytes enter the mechanism-visible ledgers (contribution ledgers,
    /// FairTorrent deficits, reputation tables, reported receipts).
    /// Mechanisms declaring [`SettleCadence::PerTransfer`] read these
    /// inputs directly; [`SettleCadence::Epoch`] mechanisms additionally
    /// fold them into balances at [`Self::epoch_close_pass`] boundaries.
    /// Keeping settlement out of the mechanisms themselves is what lets
    /// the cadence hook own it (and what pins artifacts byte-identical
    /// across the refactor).
    fn settle_transfer(&mut self, from: PeerId, to: PeerId, bytes: u64) {
        if from != SEEDER_ID {
            let s = &mut self.peers[from.index() as usize];
            s.bytes_sent += bytes;
            s.ledger.record_sent(to, bytes);
            s.deficits.on_sent(to, bytes);
            self.reputation.credit_upload(from, bytes);
            self.reports.record(to, from, bytes);
            if let Some(c) = self.consensus.as_mut() {
                c.record_transfer(from.index(), to.index(), bytes);
            }
        }
        let r = &mut self.peers[to.index() as usize];
        r.bytes_received_raw += bytes;
        r.ledger.record_received(from, bytes);
        if from != SEEDER_ID {
            r.deficits.on_received(from, bytes);
        }
    }

    fn deliver(&mut self, from: PeerId, to: PeerId, done: InFlight, now: SimTime) {
        let len = done.piece_len;
        let piece = done.piece;
        let to_idx = to.index() as usize;
        // A delivery changes the receiver's piece/obligation state (and
        // removes the pair's inflight entry): re-mark it so later visits
        // this round and next round's visit set observe the change. The
        // *sender* side needs no mark — delivery removes the piece from
        // the receiver's absent and inflight sets together, so no other
        // uploader's interest toward the receiver flips on either.
        self.mark_dirty(to);
        self.peers[to_idx].inflight.remove(&piece);
        if done.condition.is_some() {
            self.peers[to_idx].inflight_conditional =
                self.peers[to_idx].inflight_conditional.saturating_sub(1);
        }
        self.peers[to_idx].record_bootstrap(now);

        match done.condition {
            Some(cond) => {
                let r = &mut self.peers[to_idx];
                if !r.have().get(piece) {
                    r.lock_piece(piece);
                    r.obligations.push(Obligation {
                        uploader: from,
                        reciprocate_to: cond.reciprocate_to,
                        piece,
                        created_round: self.round_idx,
                    });
                    self.hot.set_obliged(to_idx, true);
                }
            }
            None => {
                if !self.peers[to_idx].have().get(piece) {
                    self.deliver_usable(from, to, piece, len);
                }
            }
        }

        // The completed upload may fulfil one of the *sender's* pending
        // obligations toward `to` (T-Chain reciprocation — key release).
        if from != SEEDER_ID {
            self.fulfill_obligation(from, to);
        }
    }

    fn deliver_usable(&mut self, from: PeerId, to: PeerId, piece: u32, len: u64) {
        let r = &mut self.peers[to.index() as usize];
        r.acquire_usable(piece);
        r.bytes_received_usable += len;
        let compliant = r.tags.compliant;
        self.availability.on_piece_acquired(piece);
        self.hot.add_piece(to.index() as usize);
        if !compliant {
            self.totals.freerider_received_usable += len;
            if from != SEEDER_ID {
                self.totals.freerider_received_from_peers += len;
            }
        }
    }

    /// The sender just completed an upload to `target`; release the key for
    /// the sender's oldest obligation pointing at `target`, if any.
    ///
    /// If none points at `target` but some obligation's designated target
    /// has departed or is already satisfied (needs nothing the sender can
    /// offer), that stale obligation is fulfilled instead: the
    /// reciprocation went to a useful peer, which is what a real T-Chain
    /// uploader accepts when re-designating an unresponsive chain partner.
    fn fulfill_obligation(&mut self, sender: PeerId, target: PeerId) {
        let s_idx = sender.index() as usize;
        let pos = self.peers[s_idx]
            .obligations
            .iter()
            .enumerate()
            .filter(|(_, o)| o.reciprocate_to == target)
            .min_by_key(|(_, o)| o.created_round)
            .map(|(i, _)| i)
            .or_else(|| {
                let stale: Vec<(usize, u64)> = self.peers[s_idx]
                    .obligations
                    .iter()
                    .enumerate()
                    .filter(|(_, o)| {
                        o.reciprocate_to != sender
                            && (!self.is_active(o.reciprocate_to)
                                || !self.needs(o.reciprocate_to, sender))
                    })
                    .map(|(i, o)| (i, o.created_round))
                    .collect();
                stale.into_iter().min_by_key(|&(_, r)| r).map(|(i, _)| i)
            });
        let Some(pos) = pos else { return };
        let ob = self.peers[s_idx].obligations.remove(pos);
        let obliged = !self.peers[s_idx].obligations.is_empty();
        self.hot.set_obliged(s_idx, obliged);
        self.unlock_for(sender, ob.piece);
        self.notify_chain_outcome(ob.uploader, sender, true);
    }

    /// Tells the uploader of a resolved conditional piece whether the
    /// receiver reciprocated, feeding T-Chain's local reputation.
    fn notify_chain_outcome(&mut self, uploader: PeerId, receiver: PeerId, honored: bool) {
        if uploader == SEEDER_ID || !self.is_active(uploader) {
            return;
        }
        if let Some(mech) = self.peers[uploader.index() as usize].mechanism.as_mut() {
            mech.on_chain_outcome(receiver, honored);
        }
    }

    fn unlock_for(&mut self, peer: PeerId, piece: u32) {
        let idx = peer.index() as usize;
        if self.peers[idx].unlock_piece(piece) {
            let len = self.config.file.piece_len(piece);
            self.peers[idx].bytes_received_usable += len;
            let compliant = self.peers[idx].tags.compliant;
            self.availability.on_piece_acquired(piece);
            self.hot.add_piece(idx);
            if !compliant {
                // Locked pieces only ever come from peers (the seeder
                // uploads unconditionally), so an unlock is peer-sourced.
                self.totals.freerider_received_usable += len;
                self.totals.freerider_received_from_peers += len;
            }
        }
    }

    /// Aborts transfers that made no progress for `stall_timeout_rounds`;
    /// the receiver's piece becomes requestable from other sources again,
    /// exactly as a real client re-issues a timed-out request. Without
    /// this, a piece can sit parked at 95% in a pair the uploader's policy
    /// happens never to revisit, stalling completion indefinitely.
    fn stalled_transfers_pass(&mut self) {
        let timeout = self.config.stall_timeout_rounds;
        let before = self.round_idx.saturating_sub(timeout);
        if self.round_idx < timeout {
            return;
        }
        for ((from, to), fl) in self.transfers.drain_stalled(before) {
            self.totals.aborted_bytes += fl.bytes_done;
            if self.recorder.is_enabled() {
                self.recorder.incr("swarm.transfers_stalled", 1);
                let round = self.round_idx;
                self.recorder
                    .emit_sampled(Category::Transfer, || TraceEvent::TransferStalled {
                        round,
                        from: from.index(),
                        to: to.index(),
                        piece: fl.piece,
                        bytes_done: fl.bytes_done,
                    });
            }
            if to == SEEDER_ID {
                continue;
            }
            if let Some(p) = self.peers.get_mut(to.index() as usize) {
                p.inflight.remove(&fl.piece);
                if fl.condition.is_some() {
                    p.inflight_conditional = p.inflight_conditional.saturating_sub(1);
                }
                // The piece is requestable again: sources regain interest
                // in this receiver, so it must rejoin the visit set.
                self.mark_dirty(to);
            }
        }
    }

    fn obligations_pass(&mut self, _now: SimTime) {
        let ttl = self.config.mechanism_params.tchain_obligation_ttl;
        let round = self.round_idx;
        let ids: Vec<u32> = self
            .peers
            .iter()
            .filter(|p| p.is_active() && !p.obligations.is_empty())
            .map(|p| p.id.index())
            .collect();
        for pid in ids {
            let id = PeerId::new(pid);
            // Collusion: a ring member's obligations whose confirmation
            // target is a fellow ring member are "confirmed" without any
            // upload (false receipt report), releasing the key for free.
            let ring = self.peers[pid as usize].tags.collusion_ring;
            if let Some(ring) = ring {
                let colluding: Vec<Obligation> = self.peers[pid as usize]
                    .obligations
                    .iter()
                    .filter(|o| {
                        self.is_active(o.reciprocate_to)
                            && self.peer(o.reciprocate_to).tags.collusion_ring == Some(ring)
                    })
                    .copied()
                    .collect();
                for ob in colluding {
                    self.peers[pid as usize]
                        .obligations
                        .retain(|o| o != &ob);
                    self.unlock_for(id, ob.piece);
                    // The accomplice's false receipt report convinces the
                    // uploader the chain was honored.
                    self.notify_chain_outcome(ob.uploader, id, true);
                }
            }
            // Expiry: the key window lapses and the receiver loses the
            // ciphertext (the piece becomes absent and re-downloadable,
            // possibly from the seeder or another chain). This is what
            // keeps free-riders' received bytes unusable.
            let expired: Vec<Obligation> = self.peers[pid as usize]
                .obligations
                .iter()
                .filter(|o| round.saturating_sub(o.created_round) >= ttl)
                .copied()
                .collect();
            let had_expired = !expired.is_empty();
            for ob in expired {
                self.peers[pid as usize].obligations.retain(|o| o != &ob);
                self.peers[pid as usize].discard_locked(ob.piece);
                self.notify_chain_outcome(ob.uploader, id, false);
            }
            if had_expired {
                // Discarded pieces are absent again: sources regain
                // interest in this receiver next round.
                self.mark_dirty(id);
            }
            let obliged = !self.peers[pid as usize].obligations.is_empty();
            self.hot.set_obliged(pid as usize, obliged);
        }
    }

    fn completions_pass(&mut self, now: SimTime) {
        let np = self.config.file.num_pieces();
        let done: Vec<u32> = if self.naive_hotpath {
            self.peers
                .iter()
                .filter(|p| p.is_active() && p.is_complete())
                .map(|p| p.id.index())
                .collect()
        } else {
            let done: Vec<u32> = (0..self.hot.len())
                .filter(|&i| self.hot.is_active(i) && self.hot.have_count(i) == np)
                .map(|i| i as u32)
                .collect();
            debug_assert_eq!(
                done,
                self.peers
                    .iter()
                    .filter(|p| p.is_active() && p.is_complete())
                    .map(|p| p.id.index())
                    .collect::<Vec<u32>>(),
                "SoA completion detection diverged from the bitfield scan"
            );
            done
        };
        for pid in done {
            self.depart(PeerId::new(pid), Departure::Completed(now));
            // A whitewashing attacker sheds its (now history-laden)
            // identity at the moment it finishes: the node rejoins under a
            // fresh name carrying the pieces. The `bytes_received_usable`
            // guard stops the chain — a successor that downloaded nothing
            // itself departs without spawning another identity.
            let p = &self.peers[pid as usize];
            if p.tags.whitewash_interval.is_some()
                && !p.tags.compliant
                && p.bytes_received_usable > 0
            {
                self.spawn_successor(PeerId::new(pid), now);
            }
        }
    }

    fn depart(&mut self, id: PeerId, why: Departure) {
        let idx = id.index() as usize;
        let dropped = self.transfers.drop_peer(id);
        for ((_, t), fl) in dropped {
            if t != id && t != SEEDER_ID {
                self.peers[t.index() as usize].inflight.remove(&fl.piece);
                if fl.condition.is_some() {
                    self.peers[t.index() as usize].inflight_conditional = self.peers
                        [t.index() as usize]
                        .inflight_conditional
                        .saturating_sub(1);
                }
                // The receiver lost an inflight entry without acquiring
                // the piece: it wants it (from other sources) again.
                self.mark_dirty(t);
            }
        }
        let neighbors: Vec<PeerId> = self.peers[idx].neighbors.iter().copied().collect();
        for n in neighbors {
            if let Some(p) = self.peers.get_mut(n.index() as usize) {
                p.neighbors.remove(&id);
            }
        }
        self.availability.remove_peer(self.peers[idx].have());
        self.peers[idx].departure = Some(why);
        self.peers[idx].inflight.clear();
        self.peers[idx].inflight_conditional = 0;
        self.hot.retire(idx);
        self.adj_dirty = true;
        let p = &self.peers[idx];
        if p.tags.compliant || p.tags.whitewash_interval.is_some() {
            self.open_active -= 1;
        }
        if p.tags.compliant && matches!(why, Departure::Completed(_)) {
            self.compliant_completed += 1;
        }
        // Memory diet: a departed identity's bitfields are read-only from
        // here (finalize reads, whitewash successors copy) — fold the
        // dense words into interval runs where strictly smaller. Purely
        // representational, so it is identical across round-loop modes
        // and shard counts.
        self.peers[idx].compress_storage();
    }

    /// Applies every fault whose round has come, at the top of the round
    /// (before whitewashing and allocation). A no-op — one `is_inert`
    /// branch — when no fault schedule is attached, so fault-free runs
    /// are untouched.
    fn apply_faults_pass(&mut self, now: SimTime) {
        if self.faults.is_inert() {
            return;
        }
        self.seeder_fault_pass();
        while self.fault_cursor < self.faults.events().len() {
            let ev = self.faults.events()[self.fault_cursor];
            if ev.round > self.round_idx {
                break;
            }
            self.fault_cursor += 1;
            // Resolve the spec index to the spawned identity. Unspawned
            // (arrival still pending — hand-built schedules only) or
            // already-departed identities (completed, whitewashed, or
            // churned earlier) are skipped: the schedule describes what
            // the environment *would* do, not what must happen.
            let Some(id) = self.spec_peer.get(ev.peer).copied().flatten() else {
                continue;
            };
            let idx = id.index() as usize;
            if !self.peers[idx].is_active() {
                continue;
            }
            match ev.kind {
                FaultKind::Depart => {
                    if self.peers[idx].offline {
                        // A schedule never departs a peer mid-outage, but
                        // an end-at-departure-round event may still be
                        // pending; restore availability before `depart`
                        // removes it so the counts stay balanced.
                        self.end_outage(id);
                    }
                    self.depart(id, Departure::Churned(now));
                    self.recorder.incr("swarm.fault.departures", 1);
                    self.record_fault(FaultKind::Depart.name(), id.index(), 0);
                }
                FaultKind::OutageStart => {
                    self.start_outage(id);
                    self.recorder.incr("swarm.fault.outages", 1);
                    self.record_fault(FaultKind::OutageStart.name(), id.index(), 0);
                }
                FaultKind::OutageEnd => {
                    if self.peers[idx].offline {
                        self.end_outage(id);
                        self.record_fault(FaultKind::OutageEnd.name(), id.index(), 0);
                    }
                }
            }
        }
    }

    /// Takes the seeder permanently offline when the schedule says so:
    /// at a fixed failure round, or once the configured fraction of the
    /// expected compliant population has completed (the "selfish
    /// leech-off" where the original seeder stops seeding as soon as the
    /// content has spread).
    fn seeder_fault_pass(&mut self) {
        if !self.seeder_online {
            return;
        }
        let failed = self
            .faults
            .seeder_failure_round
            .is_some_and(|r| self.round_idx >= r);
        let exited = self.faults.seeder_exit_fraction.is_some_and(|f| {
            debug_assert_eq!(
                self.compliant_completed,
                self.peers
                    .iter()
                    .filter(|p| {
                        p.tags.compliant && matches!(p.departure, Some(Departure::Completed(_)))
                    })
                    .count(),
                "completion counter diverged from the departure scan"
            );
            let done = self.compliant_completed;
            done > 0 && done as f64 >= f * self.expected_compliant as f64
        });
        if !(failed || exited) {
            return;
        }
        self.seeder_online = false;
        let dropped = self.transfers.drop_peer(SEEDER_ID);
        for ((_, t), fl) in dropped {
            if t != SEEDER_ID {
                let p = &mut self.peers[t.index() as usize];
                p.inflight.remove(&fl.piece);
                if fl.condition.is_some() {
                    p.inflight_conditional = p.inflight_conditional.saturating_sub(1);
                }
                self.mark_dirty(t);
            }
        }
        self.recorder.incr("swarm.fault.seeder_offline", 1);
        self.record_fault("seeder_offline", u32::MAX, 0);
    }

    /// Suspends a peer: its transfers (both directions) are dropped and
    /// its pieces leave the availability map, but it keeps its bitfield,
    /// ledgers, obligations and neighbor links for resumption.
    fn start_outage(&mut self, id: PeerId) {
        let dropped = self.transfers.drop_peer(id);
        for ((_, t), fl) in dropped {
            if t != id && t != SEEDER_ID {
                let p = &mut self.peers[t.index() as usize];
                p.inflight.remove(&fl.piece);
                if fl.condition.is_some() {
                    p.inflight_conditional = p.inflight_conditional.saturating_sub(1);
                }
                self.mark_dirty(t);
            }
        }
        let idx = id.index() as usize;
        self.availability.remove_peer(self.peers[idx].have());
        self.peers[idx].offline = true;
        self.peers[idx].inflight.clear();
        self.peers[idx].inflight_conditional = 0;
        self.hot.set_offline(idx, true);
        self.adj_dirty = true;
    }

    /// Brings a suspended peer back: its pieces re-enter the availability
    /// map and it resumes through the ordinary allocation paths next
    /// round (re-bootstrapping its transfers from its kept bitfield).
    fn end_outage(&mut self, id: PeerId) {
        let idx = id.index() as usize;
        self.peers[idx].offline = false;
        // Back online: both its own wants and its candidates' interest in
        // it resume — CSR expansion of this mark covers the candidates.
        self.mark_dirty(id);
        let have: Vec<u32> = self.peers[idx].have().iter_ones().collect();
        for p in have {
            self.availability.on_piece_acquired(p);
        }
        self.hot.set_offline(idx, false);
        self.adj_dirty = true;
    }

    /// Telemetry for one applied fault (no-op when the recorder is off).
    fn record_fault(&mut self, kind: &'static str, peer: u32, bytes: u64) {
        if !self.recorder.is_enabled() {
            return;
        }
        self.recorder.incr("swarm.fault.events", 1);
        let round = self.round_idx;
        self.recorder
            .emit_sampled(Category::Fault, || TraceEvent::Fault {
                round,
                peer,
                kind,
                bytes,
            });
    }

    /// A completed piece transfer lost in transit: the receiver never
    /// gets the piece (it stays absent and re-requestable), and the wire
    /// bytes move from its download tally into the dropped-bytes total —
    /// upload-side accounting stands, the sender did spend the bandwidth.
    fn drop_delivery(&mut self, to: PeerId, done: InFlight) {
        let to_idx = to.index() as usize;
        // The piece stays absent and leaves inflight: sources regain
        // interest in this receiver.
        self.mark_dirty(to);
        let r = &mut self.peers[to_idx];
        r.inflight.remove(&done.piece);
        if done.condition.is_some() {
            r.inflight_conditional = r.inflight_conditional.saturating_sub(1);
        }
        r.bytes_received_raw = r.bytes_received_raw.saturating_sub(done.piece_len);
        if !r.tags.compliant {
            self.totals.freerider_received_raw = self
                .totals
                .freerider_received_raw
                .saturating_sub(done.piece_len);
        }
        self.totals.fault_dropped_bytes += done.piece_len;
        self.recorder.incr("swarm.fault.drops", 1);
        self.recorder.incr("swarm.fault.dropped_bytes", done.piece_len);
        self.record_fault("piece_drop", to.index(), done.piece_len);
    }

    /// Is the swarm unsatisfiable — does some peer that holds the run
    /// open want a piece that no surviving source will ever offer again?
    /// Offline peers count as sources (their outage ends before any
    /// departure, so their pieces return), as does the seeder while
    /// online; pending arrivals defer the verdict entirely.
    fn swarm_unsatisfiable(&self) -> bool {
        debug_assert_eq!(
            self.pending_arrivals,
            self.specs.iter().filter(|s| s.is_some()).count(),
            "pending-arrival counter diverged from the spec scan"
        );
        if self.seeder_online || self.pending_arrivals > 0 {
            return false;
        }
        let mut sources = Bitfield::new(self.config.file.num_pieces());
        for p in self.peers.iter().filter(|p| p.is_active()) {
            for piece in p.offer().iter_ones() {
                sources.set(piece);
            }
        }
        self.peers.iter().any(|p| {
            p.is_active()
                && (p.tags.compliant || p.tags.whitewash_interval.is_some())
                && !p.is_complete()
                && p.absent().iter_ones().any(|piece| !sources.get(piece))
        })
    }

    fn whitewash_pass(&mut self, now: SimTime) {
        let round = self.round_idx;
        let due = |p: &PeerState| {
            p.tags
                .whitewash_interval
                .is_some_and(|w| round > p.arrival_round && (round - p.arrival_round).is_multiple_of(w))
        };
        let targets: Vec<u32> = if self.naive_hotpath {
            self.peers
                .iter()
                .filter(|p| p.is_active() && !p.offline && due(p))
                .map(|p| p.id.index())
                .collect()
        } else {
            // The SoA flags pre-filter the (rare) whitewashers; only they
            // pay for the interval arithmetic on the full peer struct.
            let targets: Vec<u32> = (0..self.hot.len())
                .filter(|&i| self.hot.whitewash_online(i) && due(&self.peers[i]))
                .map(|i| i as u32)
                .collect();
            debug_assert_eq!(
                targets,
                self.peers
                    .iter()
                    .filter(|p| p.is_active() && !p.offline && due(p))
                    .map(|p| p.id.index())
                    .collect::<Vec<u32>>(),
                "SoA whitewash pre-filter diverged from the peer scan"
            );
            targets
        };
        for pid in targets {
            self.re_identity(PeerId::new(pid), now);
        }
        // Ban evaders rotate on the consensus layer's observable state
        // instead of a fixed interval: once permanently banned, or one
        // strike short of a permanent repeat crossing. The successor
        // inherits the tags, so each rotation retires exactly one
        // identity and spawns exactly one.
        if let Some(c) = &self.consensus {
            let evaders: Vec<u32> = self
                .peers
                .iter()
                .filter(|p| {
                    p.is_active() && !p.offline && p.tags.ban_evade && c.evade_due(p.id.index())
                })
                .map(|p| p.id.index())
                .collect();
            for pid in evaders {
                self.re_identity(PeerId::new(pid), now);
            }
        }
    }

    /// Whitewashing: retire `old` and rejoin as a fresh identity that keeps
    /// the downloaded pieces but sheds all ledgers, deficits, obligations
    /// and reputation.
    fn re_identity(&mut self, old: PeerId, now: SimTime) {
        let old_idx = old.index() as usize;
        // Drop transfers and detach the old identity.
        let dropped = self.transfers.drop_peer(old);
        for ((_, t), fl) in dropped {
            if t != SEEDER_ID {
                self.peers[t.index() as usize].inflight.remove(&fl.piece);
                if fl.condition.is_some() {
                    self.peers[t.index() as usize].inflight_conditional = self.peers
                        [t.index() as usize]
                        .inflight_conditional
                        .saturating_sub(1);
                }
                if t != old {
                    self.mark_dirty(t);
                }
            }
        }
        let neighbors: Vec<PeerId> = self.peers[old_idx].neighbors.iter().copied().collect();
        for n in neighbors {
            self.peers[n.index() as usize].neighbors.remove(&old);
        }
        self.peers[old_idx].inflight.clear();
        self.peers[old_idx].inflight_conditional = 0;
        self.peers[old_idx].departure = Some(Departure::Whitewashed(now));
        self.availability.remove_peer(self.peers[old_idx].have());
        self.hot.retire(old_idx);
        self.adj_dirty = true;
        {
            let p = &self.peers[old_idx];
            if p.tags.compliant || p.tags.whitewash_interval.is_some() {
                self.open_active -= 1;
            }
        }
        self.reputation.forget(old);
        self.reports.forget(old);
        self.spawn_successor(old, now);
    }

    /// Builds the fresh identity replacing a retired whitewasher: same
    /// capacity/tags/mechanism and the same usable pieces (re-counted into
    /// the availability map under the new identity). The caller must have
    /// already detached `old` (via [`Self::re_identity`] or
    /// [`Self::depart`]).
    fn spawn_successor(&mut self, old: PeerId, now: SimTime) {
        let old_idx = old.index() as usize;
        let mechanism = self.peers[old_idx]
            .mechanism
            .take()
            .expect("mechanism present");
        let tags = self.peers[old_idx].tags;
        let capacity = self.peers[old_idx].capacity_bps;
        let have: Vec<u32> = self.peers[old_idx].have().iter_ones().collect();
        let new_id = PeerId::new(self.peers.len() as u32);
        let mut peer = PeerState::new(
            new_id,
            capacity,
            tags,
            now,
            self.rounds.round_of(now),
            self.config.file.num_pieces(),
            mechanism,
        );
        for p in &have {
            peer.acquire_usable(*p);
            peer.bytes_inherited += self.config.file.piece_len(*p);
            self.availability.on_piece_acquired(*p);
        }
        if !have.is_empty() {
            peer.record_bootstrap(now);
        }
        let neighbors = self.choose_neighbors(new_id, tags.large_view);
        for &n in &neighbors {
            self.peers[n.index() as usize].neighbors.insert(new_id);
        }
        peer.neighbors = neighbors;
        self.peers.push(peer);
        self.hot.push(&tags, have.len() as u32);
        if tags.compliant || tags.whitewash_interval.is_some() {
            self.open_active += 1;
        }
        self.adj_dirty = true;
        self.mark_dirty(new_id);
    }

    fn collusion_praise_pass(&mut self) {
        // Ring members report fictitious uploads for each other, inflating
        // reputations (the reputation algorithm's collusion attack).
        let scan_members = |peers: &[PeerState]| -> Vec<(PeerId, u16, u64)> {
            peers
                .iter()
                .filter(|p| p.is_active() && !p.offline)
                .filter_map(|p| {
                    p.tags
                        .collusion_ring
                        .map(|r| (p.id, r, p.tags.fake_praise_bytes))
                })
                .collect()
        };
        let members: Vec<(PeerId, u16, u64)> = if self.naive_hotpath {
            scan_members(&self.peers)
        } else {
            let members: Vec<(PeerId, u16, u64)> = (0..self.hot.len())
                .filter(|&i| self.hot.colluder_online(i))
                .filter_map(|i| {
                    let p = &self.peers[i];
                    p.tags
                        .collusion_ring
                        .map(|r| (p.id, r, p.tags.fake_praise_bytes))
                })
                .collect();
            debug_assert_eq!(
                members,
                scan_members(&self.peers),
                "SoA collusion pre-filter diverged from the peer scan"
            );
            members
        };
        for &(id, ring, praise) in &members {
            if praise == 0 {
                continue;
            }
            let praisers: Vec<PeerId> = members
                .iter()
                .filter(|&&(other, r, _)| other != id && r == ring)
                .map(|&(other, _, _)| other)
                .collect();
            if !praisers.is_empty() {
                self.reputation
                    .credit_upload(id, praise * praisers.len() as u64);
                for reporter in praisers {
                    self.reports.record(reporter, id, praise);
                }
            }
        }
    }

    fn replenish_neighbors(&mut self) {
        let min_degree = (self.config.neighbor_degree / 2).max(1);
        // An active peer's neighbor set only ever holds live identities
        // (edges are symmetric and pruned eagerly on departure; outages
        // keep the identity alive), so `neighbors.len()` *is* the live
        // count — no per-neighbor liveness probe needed on the fast path.
        let needy: Vec<u32> = self
            .peers
            .iter()
            .filter(|p| {
                if !p.is_active() {
                    return false;
                }
                if self.naive_hotpath {
                    p.neighbors.iter().filter(|&&n| self.is_active(n)).count() < min_degree
                } else {
                    debug_assert_eq!(
                        p.neighbors.iter().filter(|&&n| self.is_active(n)).count(),
                        p.neighbors.len(),
                        "an active peer's neighbor set held a departed identity"
                    );
                    p.neighbors.len() < min_degree
                }
            })
            .map(|p| p.id.index())
            .collect();
        if needy.is_empty() {
            return;
        }
        let mut rng = self.round_rng(0xEE);
        for pid in needy {
            let id = PeerId::new(pid);
            let mut pool: Vec<PeerId> = self
                .peers
                .iter()
                .filter(|p| {
                    p.is_active()
                        && p.id != id
                        && !self.is_banned(p.id)
                        && !self.peer(id).neighbors.contains(&p.id)
                })
                .map(|p| p.id)
                .collect();
            pool.shuffle(&mut rng);
            let have = if self.naive_hotpath {
                self.peers[pid as usize]
                    .neighbors
                    .iter()
                    .filter(|&&n| self.is_active(n))
                    .count()
            } else {
                self.peers[pid as usize].neighbors.len()
            };
            let want = self.config.neighbor_degree.saturating_sub(have);
            for n in pool.into_iter().take(want) {
                self.peers[pid as usize].neighbors.insert(n);
                self.peers[n.index() as usize].neighbors.insert(id);
                self.adj_dirty = true;
                // A fresh edge can make either endpoint interested in the
                // other; mark both so both are visited.
                self.mark_dirty(id);
                self.mark_dirty(n);
            }
        }
    }

    fn seeder_allocate(&mut self, now: SimTime) {
        if !self.seeder_online {
            return;
        }
        let budget = self.config.bytes_per_round(self.config.seeder_bps);
        if budget == 0 {
            return;
        }
        let budget = budget - self.drain_partials(SEEDER_ID, now).min(budget);
        if budget == 0 {
            return;
        }
        let mut rng = self.round_rng(1);
        // Who still needs seeder pieces. With `--shards K` the scan fans
        // out over contiguous peer-index ranges; concatenating the
        // per-range hits in range order *is* id order, so the vector fed
        // to the shuffle below is identical for any K.
        let mut candidates: Vec<PeerId> =
            if self.shards > 1 && self.peers.len() >= SHARD_MIN_ITEMS {
                let (peers, transfers, seeder_bf) =
                    (&self.peers, &self.transfers, &self.seeder_bf);
                let seeder_online = self.seeder_online;
                let consensus = self.consensus.as_ref();
                let round = self.round_idx;
                let parts: Vec<Vec<PeerId>> = std::thread::scope(|scope| {
                    let handles: Vec<_> = shard_ranges(peers.len(), self.shards)
                        .into_iter()
                        .map(|r| {
                            scope.spawn(move || {
                                peers[r]
                                    .iter()
                                    .filter(|p| {
                                        p.is_active()
                                            && !consensus.is_some_and(|c| {
                                                c.is_banned_slot(p.id.index(), round)
                                            })
                                            && shard::needs_with(
                                                peers,
                                                transfers,
                                                seeder_bf,
                                                seeder_online,
                                                p.id,
                                                SEEDER_ID,
                                            )
                                    })
                                    .map(|p| p.id)
                                    .collect()
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("shard worker panicked"))
                        .collect()
                });
                parts.concat()
            } else {
                self.peers
                    .iter()
                    .filter(|p| {
                        p.is_active() && !self.is_banned(p.id) && self.needs(p.id, SEEDER_ID)
                    })
                    .map(|p| p.id)
                    .collect()
            };
        candidates.shuffle(&mut rng);
        if candidates.is_empty() {
            return;
        }
        let piece_size = self.config.file.piece_size();
        let mut remaining = budget;
        let mut i = 0usize;
        let mut stalled = 0usize;
        while remaining > 0 && stalled < candidates.len() {
            let target = candidates[i % candidates.len()];
            i += 1;
            let chunk = remaining.min(piece_size);
            let used = self.execute_grant(
                SEEDER_ID,
                target,
                chunk,
                GrantReason::Seeding,
                None,
                now,
                &mut rng,
            );
            remaining -= used;
            if used == 0 {
                stalled += 1;
            } else {
                stalled = 0;
            }
        }
    }

    fn end_round_pass(&mut self) {
        // Departures since the allocation loop have shrunk the graph;
        // refresh the candidate lists the end-of-round views will serve.
        self.refresh_candidates();
        // Mechanism end-of-round hooks run first so they can observe this
        // round's receipts before the ledger window rolls.
        let ids: Vec<u32> = if self.naive_hotpath {
            self.peers
                .iter()
                .filter(|p| p.is_active())
                .map(|p| p.id.index())
                .collect()
        } else {
            let ids: Vec<u32> = (0..self.hot.len())
                .filter(|&i| self.hot.is_active(i))
                .map(|i| i as u32)
                .collect();
            debug_assert_eq!(
                ids,
                self.peers
                    .iter()
                    .filter(|p| p.is_active())
                    .map(|p| p.id.index())
                    .collect::<Vec<u32>>(),
                "SoA end-of-round id scan diverged from the peer scan"
            );
            ids
        };
        if self.shards > 1 && ids.len() >= SHARD_MIN_ITEMS {
            self.end_round_hooks_sharded(&ids);
        } else {
            for &pid in &ids {
                let idx = pid as usize;
                let Some(mut mech) = self.peers[idx].mechanism.take() else {
                    continue;
                };
                {
                    let view = SimView::new(&*self, PeerId::new(pid));
                    mech.on_round_end(&view);
                }
                self.peers[idx].mechanism = Some(mech);
            }
        }
        // Epoch-cadence settlement runs after the round-end hooks (same
        // receipts visible) and before the ledger window rolls below. The
        // gate is one branch, so the six per-transfer mechanisms pay
        // nothing for the pass.
        if self.has_epoch_cadence {
            self.epoch_close_pass(&ids);
        }
        // Consensus report aggregation closes the round for
        // consensus-reputation populations (one branch otherwise).
        if self.consensus.is_some() {
            self.consensus_pass();
        }
        self.settle_round_boundary();
    }

    /// The end-of-round consensus pass (see [`crate::consensus`]): builds
    /// the round's report pairs from the settled transfers, distorts them
    /// through the attacker tags, cross-checks them — sharded over
    /// uploader groups when the round is large enough — and applies
    /// strikes, credits, and ban transitions. Draws no RNG; debug builds
    /// re-run the aggregation sequentially and assert the sharded result
    /// is identical.
    fn consensus_pass(&mut self) {
        let Some(mut c) = self.consensus.take() else {
            return;
        };
        let t = self.profiler.start();
        let round = self.round_idx;
        c.ensure_slots(self.peers.len());
        // Decay strikes and scores before this round's reports land.
        let decay = c.policy.decay;
        for s in &mut c.strikes {
            *s *= decay;
        }
        for s in &mut c.scores {
            *s *= decay;
        }
        let behaviors: Vec<SlotBehavior> = self
            .peers
            .iter()
            .enumerate()
            .map(|(i, p)| SlotBehavior {
                online: p.is_active() && !p.offline,
                banned: c.is_banned_slot(i as u32, round),
                underreport: p.tags.underreport,
                deny_all: p.tags.ban_evade,
                stuff_reports: p.tags.stuff_reports,
                ring: p.tags.collusion_ring,
            })
            .collect();
        let transfers = std::mem::take(&mut c.transfers);
        let pairs = consensus::build_reports(
            &c.policy,
            &transfers,
            &behaviors,
            &c.strikes,
            self.config.file.piece_size(),
            round,
        );
        let shards = if self.shards > 1 && pairs.len() >= SHARD_MIN_ITEMS {
            self.shards
        } else {
            1
        };
        #[cfg(debug_assertions)]
        let pairs_check = pairs.clone();
        let outcome = consensus::aggregate(&c.policy, pairs, &transfers, shards);
        #[cfg(debug_assertions)]
        if shards > 1 {
            let sequential = consensus::aggregate(&c.policy, pairs_check, &transfers, 1);
            debug_assert_eq!(
                outcome, sequential,
                "sharded consensus aggregation diverged from sequential"
            );
        }
        c.counters.reports += outcome.reports;
        c.counters.disputes += outcome.disputes;
        for &(slot, credit) in &outcome.credits {
            c.scores[slot as usize] += credit as f64;
        }
        for &(slot, amount) in &outcome.strikes {
            let s = &mut c.strikes[slot as usize];
            *s += amount;
            if *s > c.max_strikes {
                c.max_strikes = *s;
            }
        }
        // Threshold scan in slot order: a first crossing bans temporarily,
        // a repeat crossing after a served temporary ban bans permanently.
        let threshold = f64::from(c.policy.ban_threshold);
        let mut transitions: Vec<(u32, &'static str, f64)> = Vec::new();
        for i in 0..self.peers.len() {
            if c.perm_banned[i] || !self.peers[i].is_active() {
                continue;
            }
            if c.strikes[i] >= threshold {
                let strikes = c.strikes[i];
                if c.temp_bans_served[i] >= 1 {
                    c.perm_banned[i] = true;
                    c.scores[i] = 0.0;
                    c.counters.bans_perm += 1;
                    transitions.push((i as u32, "ban_perm", strikes));
                } else {
                    c.banned_until[i] = round + 1 + c.policy.temp_ban_rounds;
                    c.temp_bans_served[i] += 1;
                    c.counters.bans_temp += 1;
                    transitions.push((i as u32, "ban_temp", strikes));
                }
                if self.peers[i].tags.compliant {
                    c.counters.bans_compliant += 1;
                } else {
                    c.counters.bans_noncompliant += 1;
                }
                c.strikes[i] = 0.0;
            }
        }
        // Temporary bans expiring at the next round boundary re-admit the
        // peer; surface the transition so adjacency and dirty state
        // pick the edge back up.
        for i in 0..self.peers.len() {
            if !c.perm_banned[i] && c.banned_until[i] == round + 1 && self.peers[i].is_active() {
                transitions.push((i as u32, "unban", c.strikes[i]));
            }
        }
        self.consensus = Some(c);
        for &(peer, kind, strikes) in &transitions {
            // Every transition changes the candidate graph; mark the peer
            // and its neighbors so the dirty loop re-visits both sides of
            // each vanishing or reappearing edge.
            self.adj_dirty = true;
            if self.dirty_active() {
                self.mark_dirty(PeerId::new(peer));
                let neighbors: Vec<PeerId> = self.peers[peer as usize]
                    .neighbors
                    .iter()
                    .copied()
                    .filter(|&n| n != SEEDER_ID && self.is_online(n))
                    .collect();
                for n in neighbors {
                    self.mark_dirty(n);
                }
            }
            if self.recorder.is_enabled() {
                self.recorder
                    .emit_sampled(Category::Consensus, || TraceEvent::ConsensusBan {
                        round,
                        peer,
                        kind,
                        strikes,
                    });
            }
        }
        self.profiler.stop(phase::SIM_CONSENSUS, t);
    }

    /// The per-round settlement boundary: rolls every active peer's
    /// ledger window. Together with [`Self::settle_transfer`] this is the
    /// only place per-transfer (`SettleCadence::PerTransfer`) mechanism
    /// inputs move — reciprocity credits, FairTorrent deficits, and
    /// BitTorrent rate windows all settle through these two entry points,
    /// never inside the mechanisms themselves.
    fn settle_round_boundary(&mut self) {
        for p in &mut self.peers {
            if p.is_active() {
                p.ledger.end_round();
            }
        }
    }

    /// The epoch-boundary settlement pass: invokes
    /// [`Mechanism::on_epoch_close`] on every active mechanism whose
    /// [`SettleCadence::Epoch`] length divides the just-finished round.
    /// The hook draws no RNG and writes only its own mechanism box, so
    /// the sharded pass equals the sequential one exactly; dirty marking
    /// happens afterwards on the caller's thread because the
    /// [`DirtySet`] is shared.
    fn epoch_close_pass(&mut self, ids: &[u32]) {
        let t = self.profiler.start();
        // `round_idx` is 0-based inside `step_round`: the first epoch of
        // length n closes at the end of round index n − 1.
        let finished_rounds = self.round_idx + 1;
        let settled: Vec<u32> = if self.shards > 1 && ids.len() >= SHARD_MIN_ITEMS {
            self.epoch_close_hooks_sharded(ids, finished_rounds)
        } else {
            let mut settled = Vec::new();
            for &pid in ids {
                let idx = pid as usize;
                let Some(mut mech) = self.peers[idx].mechanism.take() else {
                    continue;
                };
                if at_epoch_boundary(&*mech, finished_rounds) {
                    let view = SimView::new(&*self, PeerId::new(pid));
                    mech.on_epoch_close(&view);
                    settled.push(pid);
                }
                self.peers[idx].mechanism = Some(mech);
            }
            settled
        };
        if !settled.is_empty() {
            self.epoch_boundaries += 1;
            self.epoch_settlements += settled.len() as u64;
            // A settlement changes the settled peer's own next
            // allocation (fresh balances reorder its creditor service),
            // so the dirty loop must re-visit it; CSR expansion of the
            // mark covers the neighbors it may now serve.
            if self.dirty_active() {
                for &pid in &settled {
                    self.mark_dirty(PeerId::new(pid));
                }
            }
        }
        self.profiler.stop(phase::SIM_EPOCH, t);
    }

    /// The epoch hooks, sharded exactly like
    /// [`Self::end_round_hooks_sharded`]: boxes out, contiguous ranges,
    /// slot-ordered restore. Returns the settled peer ids in `ids` order
    /// (shard ranges are contiguous, so concatenation preserves it).
    fn epoch_close_hooks_sharded(&mut self, ids: &[u32], finished_rounds: u64) -> Vec<u32> {
        let mut mechs: Vec<Option<Box<dyn Mechanism>>> = ids
            .iter()
            .map(|&pid| self.peers[pid as usize].mechanism.take())
            .collect();
        let ctx = ShardCtx {
            peers: &self.peers,
            adj: &self.adj,
            adj_off: &self.adj_off,
            transfers: &self.transfers,
            seeder_bf: &self.seeder_bf,
            seeder_online: self.seeder_online,
            round_idx: self.round_idx,
            trusted_reputation: self.config.trusted_reputation,
            trusted_cache: &self.trusted_cache,
            reputation: &self.reputation,
            consensus_scores: self.consensus.as_ref().map(|c| c.scores.as_slice()),
            piece_size: self.config.file.piece_size(),
        };
        let settled: Vec<Vec<u32>> = std::thread::scope(|scope| {
            let ctx = &ctx;
            let mut handles = Vec::new();
            let mut rest: &mut [Option<Box<dyn Mechanism>>] = &mut mechs;
            let mut tail_ids = ids;
            for r in shard_ranges(ids.len(), self.shards) {
                let (head, rest_next) = rest.split_at_mut(r.len());
                rest = rest_next;
                let (chunk_ids, ids_next) = tail_ids.split_at(r.len());
                tail_ids = ids_next;
                handles.push(scope.spawn(move || {
                    let mut settled = Vec::new();
                    for (&pid, slot) in chunk_ids.iter().zip(head.iter_mut()) {
                        if let Some(mech) = slot.as_mut() {
                            if at_epoch_boundary(&**mech, finished_rounds) {
                                let view = ShardView::new(ctx, PeerId::new(pid));
                                mech.on_epoch_close(&view);
                                settled.push(pid);
                            }
                        }
                    }
                    settled
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        });
        let merge_t = self.profiler.start();
        for (&pid, slot) in ids.iter().zip(mechs.iter_mut()) {
            if let Some(mech) = slot.take() {
                self.peers[pid as usize].mechanism = Some(mech);
            }
        }
        self.profiler.stop(phase::SIM_SHARD_MERGE, merge_t);
        settled.concat()
    }

    /// The end-of-round mechanism hooks, sharded over contiguous ranges
    /// of `ids`. Every mechanism box is taken out up front, so each
    /// worker mutates only its own slice of boxes while sharing a
    /// read-only [`ShardCtx`] of the rest of the state — `on_round_end`
    /// draws no RNG and writes nothing shared, so any interleaving equals
    /// the sequential loop exactly (pinned by the sharded rows of the
    /// byte-identity battery). Restoring the boxes afterwards is the
    /// slot-ordered merge.
    fn end_round_hooks_sharded(&mut self, ids: &[u32]) {
        let mut mechs: Vec<Option<Box<dyn Mechanism>>> = ids
            .iter()
            .map(|&pid| self.peers[pid as usize].mechanism.take())
            .collect();
        let ctx = ShardCtx {
            peers: &self.peers,
            adj: &self.adj,
            adj_off: &self.adj_off,
            transfers: &self.transfers,
            seeder_bf: &self.seeder_bf,
            seeder_online: self.seeder_online,
            round_idx: self.round_idx,
            trusted_reputation: self.config.trusted_reputation,
            trusted_cache: &self.trusted_cache,
            reputation: &self.reputation,
            consensus_scores: self.consensus.as_ref().map(|c| c.scores.as_slice()),
            piece_size: self.config.file.piece_size(),
        };
        std::thread::scope(|scope| {
            let ctx = &ctx;
            let mut rest: &mut [Option<Box<dyn Mechanism>>] = &mut mechs;
            let mut tail_ids = ids;
            for r in shard_ranges(ids.len(), self.shards) {
                let (head, rest_next) = rest.split_at_mut(r.len());
                rest = rest_next;
                let (chunk_ids, ids_next) = tail_ids.split_at(r.len());
                tail_ids = ids_next;
                scope.spawn(move || {
                    for (&pid, slot) in chunk_ids.iter().zip(head.iter_mut()) {
                        if let Some(mech) = slot.as_mut() {
                            let view = ShardView::new(ctx, PeerId::new(pid));
                            mech.on_round_end(&view);
                        }
                    }
                });
            }
        });
        let merge_t = self.profiler.start();
        for (&pid, slot) in ids.iter().zip(mechs.iter_mut()) {
            if let Some(mech) = slot.take() {
                self.peers[pid as usize].mechanism = Some(mech);
            }
        }
        self.profiler.stop(phase::SIM_SHARD_MERGE, merge_t);
    }

    fn sample_metrics(&mut self, now: SimTime) {
        let t = now.as_secs_f64();
        let active_pairs: Vec<(f64, f64)> = self
            .peers
            .iter()
            .filter(|p| p.is_active() && p.tags.compliant)
            .map(|p| (p.bytes_sent as f64, p.bytes_received_usable as f64))
            .collect();
        if let Some(avg) = coop_incentives::metrics::avg_fairness_ratio(&active_pairs) {
            self.fairness_avg.push(t, avg);
        }
        let (f, _) = coop_incentives::metrics::fairness_stat(&active_pairs);
        if f.is_finite() {
            self.fairness_stat.push(t, f);
        }
        let compliant: Vec<&PeerState> = self
            .peers
            .iter()
            .filter(|p| p.tags.compliant)
            .collect();
        // Denominator: the whole expected compliant population, so the
        // fraction is monotone even while arrivals are still trickling in
        // (the paper's Fig. 4c plots fractions of all 1000 users).
        let total = self.expected_compliant.max(compliant.len()) as f64;
        if total > 0.0 {
            let boot = compliant
                .iter()
                .filter(|p| p.bootstrap_time.is_some())
                .count() as f64;
            let done = compliant
                .iter()
                .filter(|p| matches!(p.departure, Some(Departure::Completed(_))))
                .count() as f64;
            self.bootstrapped_frac.push(t, boot / total);
            self.completed_frac.push(t, done / total);
        }
        // Susceptibility samples below a small denominator floor are
        // noise (a handful of early pieces), not a bandwidth share.
        let peer_uploaded = self.totals.uploaded_compliant + self.totals.uploaded_freeriders;
        if let Some(d) = self.availability.diversity() {
            self.diversity.push(t, d);
        }
        if peer_uploaded >= 50 * self.config.file.piece_size() {
            self.susceptibility.push(
                t,
                coop_incentives::metrics::susceptibility(
                    self.totals.freerider_received_from_peers,
                    peer_uploaded,
                ),
            );
        }
    }

    fn finalize(mut self, run_t: PhaseToken) -> (SimResult, TelemetryReport, ProfileReport) {
        let mut profiler = std::mem::take(&mut self.profiler);
        let fin_t = profiler.start();
        let mut recorder = std::mem::take(&mut self.recorder);
        // Hot-path health counters: on the indexed path the availability
        // histogram is never rebuilt from scratch (the CI scale-smoke job
        // asserts this stays zero), and adjacency rebuilds only happen on
        // membership changes.
        recorder.incr(
            "swarm.availability.rebuilds",
            self.availability.rebuilds() + self.naive_probe_rebuilds,
        );
        recorder.incr("swarm.adjacency.rebuilds", self.adjacency_rebuilds);
        // Deterministic work accounting — how much of the O(N·degree)
        // round-loop scan did useful work (see `coop_telemetry::profile::work`).
        recorder.incr(coop_telemetry::profile::work::PEERS_VISITED, self.work_visited);
        recorder.incr(
            coop_telemetry::profile::work::PEERS_PRODUCTIVE,
            self.work_productive,
        );
        recorder.incr(
            coop_telemetry::profile::work::CANDIDATE_SCANS,
            self.work_candidate_scans,
        );
        recorder.incr(
            coop_telemetry::profile::work::EPOCH_SETTLEMENTS,
            self.epoch_settlements,
        );
        recorder.incr(
            coop_telemetry::profile::work::EPOCH_BOUNDARIES,
            self.epoch_boundaries,
        );
        if let Some(c) = &self.consensus {
            recorder.incr("swarm.consensus.reports", c.counters.reports);
            recorder.incr("swarm.consensus.disputes", c.counters.disputes);
            recorder.incr("swarm.consensus.bans_temp", c.counters.bans_temp);
            recorder.incr("swarm.consensus.bans_perm", c.counters.bans_perm);
        }
        if recorder.is_enabled() {
            recorder.incr("engine.events_processed", self.engine.events_processed());
            recorder.record_max(
                "engine.queue_depth_hwm",
                self.engine.queue_depth_high_water_mark() as u64,
            );
            let events_processed = self.engine.events_processed();
            let queue_depth_hwm = self.engine.queue_depth_high_water_mark() as u64;
            recorder.emit_with(|| TraceEvent::EngineStats {
                events_processed,
                queue_depth_hwm,
            });
            // End-of-run state dumps (the structured successor of the old
            // COOP_SWARM_DEBUG eprintln blocks).
            for (&(from, to), fl) in self.transfers.iter() {
                let from_active = from == SEEDER_ID || self.is_active(from);
                let (piece, bytes_done, piece_len) = (fl.piece, fl.bytes_done, fl.piece_len);
                let (reason, conditional) = (fl.reason.name(), fl.condition.is_some());
                recorder.emit_sampled(Category::Final, || TraceEvent::InflightAtEnd {
                    from: from.index(),
                    to: to.index(),
                    piece,
                    bytes_done,
                    piece_len,
                    reason,
                    conditional,
                    from_active,
                });
            }
            for p in self.peers.iter().filter(|p| p.is_active()) {
                let (peer, have, locked) = (
                    p.id.index(),
                    u64::from(p.have().count_ones()),
                    u64::from(p.locked().count_ones()),
                );
                let (obligations, inflight, neighbors) = (
                    p.obligations.len() as u64,
                    p.inflight.len() as u64,
                    p.neighbors.len() as u64,
                );
                // The interested-in-me census is an O(N) scan per peer —
                // O(N²) over the dump. Built inside the closure so peers
                // the Final sampling rate drops never pay for it.
                recorder.emit_sampled(Category::Final, || TraceEvent::PeerAtEnd {
                    peer,
                    have,
                    locked,
                    obligations,
                    inflight,
                    interested_in_me: self
                        .peers
                        .iter()
                        .filter(|q| q.is_active() && q.id != p.id && self.needs(q.id, p.id))
                        .count() as u64,
                    neighbors,
                });
            }
        }
        let peers = self
            .peers
            .iter()
            .map(|p| PeerRecord {
                id: p.id,
                capacity_bps: p.capacity_bps,
                compliant: p.tags.compliant,
                arrival_s: p.arrival.as_secs_f64(),
                bootstrap_s: p.bootstrap_time.map(|b| b.since(p.arrival).as_secs_f64()),
                completion_s: match p.departure {
                    Some(Departure::Completed(c)) => Some(c.since(p.arrival).as_secs_f64()),
                    _ => None,
                },
                bytes_sent: p.bytes_sent,
                bytes_received_usable: p.bytes_received_usable,
                bytes_received_raw: p.bytes_received_raw,
                bytes_inherited: p.bytes_inherited,
            })
            .collect();
        let result = SimResult {
            rounds_run: self.round_idx,
            sim_seconds: self.now.as_secs_f64(),
            peers,
            fairness_avg: self.fairness_avg,
            fairness_stat: self.fairness_stat,
            bootstrapped_frac: self.bootstrapped_frac,
            completed_frac: self.completed_frac,
            susceptibility: self.susceptibility,
            diversity: self.diversity,
            totals: self.totals,
            stalled: self.stalled,
            consensus: self.consensus.as_ref().map(|c| ConsensusSummary {
                reports: c.counters.reports,
                disputes: c.counters.disputes,
                bans_temp: c.counters.bans_temp,
                bans_perm: c.counters.bans_perm,
                bans_compliant: c.counters.bans_compliant,
                bans_noncompliant: c.counters.bans_noncompliant,
                max_strikes: c.max_strikes,
            }),
        };
        profiler.stop(phase::SIM_FINALIZE, fin_t);
        profiler.stop(phase::SIM_RUN, run_t);
        (result, recorder.into_report(), profiler.into_report())
    }
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("round", &self.round_idx)
            .field("peers", &self.peers.len())
            .field(
                "active",
                &self.peers.iter().filter(|p| p.is_active()).count(),
            )
            .field("transfers_in_flight", &self.transfers.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{flash_crowd, PeerTags};
    use coop_incentives::MechanismKind;

    fn run_kind(kind: MechanismKind, n: usize, seed: u64) -> SimResult {
        let mut config = SwarmConfig::tiny_test();
        config.seed = seed;
        let population = flash_crowd(&config, n, kind, seed);
        Simulation::builder(config)
            .population(population)
            .build()
            .unwrap()
            .run()
    }

    #[test]
    fn altruism_swarm_completes() {
        let r = run_kind(MechanismKind::Altruism, 12, 1);
        assert!(r.completed_fraction() > 0.9, "{:?}", r.completed_fraction());
        assert!(r.bootstrapped_fraction() > 0.99);
    }

    #[test]
    fn reciprocity_peers_never_upload_to_each_other() {
        let r = run_kind(MechanismKind::Reciprocity, 10, 2);
        for p in r.compliant() {
            assert_eq!(p.bytes_sent, 0, "reciprocity peer uploaded");
        }
        // The only inflow is the seeder.
        let received: u64 = r.peers.iter().map(|p| p.bytes_received_raw).sum();
        assert_eq!(received, r.totals.uploaded_seeder);
    }

    #[test]
    fn byte_conservation_all_mechanisms() {
        for kind in MechanismKind::ALL {
            let r = run_kind(kind, 10, 3);
            let sent: u64 =
                r.peers.iter().map(|p| p.bytes_sent).sum::<u64>() + r.totals.uploaded_seeder;
            let received: u64 = r.peers.iter().map(|p| p.bytes_received_raw).sum();
            assert_eq!(sent, received, "{kind}: sent {sent} != received {received}");
            assert_eq!(
                r.totals.uploaded_total(),
                sent,
                "{kind}: totals disagree with per-peer sums"
            );
        }
    }

    #[test]
    fn determinism_same_seed_same_result() {
        for kind in [MechanismKind::TChain, MechanismKind::BitTorrent] {
            let a = run_kind(kind, 10, 7);
            let b = run_kind(kind, 10, 7);
            assert_eq!(a.rounds_run, b.rounds_run, "{kind}");
            let pa: Vec<_> = a
                .peers
                .iter()
                .map(|p| (p.bytes_sent, p.bytes_received_raw, p.completion_s))
                .collect();
            let pb: Vec<_> = b
                .peers
                .iter()
                .map(|p| (p.bytes_sent, p.bytes_received_raw, p.completion_s))
                .collect();
            assert_eq!(pa, pb, "{kind}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_kind(MechanismKind::Altruism, 10, 1);
        let b = run_kind(MechanismKind::Altruism, 10, 2);
        let ta: Vec<_> = a.peers.iter().map(|p| p.bytes_sent).collect();
        let tb: Vec<_> = b.peers.iter().map(|p| p.bytes_sent).collect();
        assert_ne!(ta, tb);
    }

    #[test]
    fn tchain_and_fairtorrent_complete_and_are_fair() {
        for kind in [MechanismKind::TChain, MechanismKind::FairTorrent] {
            let r = run_kind(kind, 12, 5);
            assert!(
                r.completed_fraction() > 0.9,
                "{kind}: completed {}",
                r.completed_fraction()
            );
            let f = r.final_avg_fairness().expect("peers downloaded");
            assert!(
                (f - 1.0).abs() < 0.35,
                "{kind}: avg fairness {f} should approach 1"
            );
        }
    }

    #[test]
    fn freeriders_receive_nothing_usable_under_tchain() {
        let mut config = SwarmConfig::tiny_test();
        config.seed = 11;
        let mut population = flash_crowd(&config, 10, MechanismKind::TChain, 11);
        // Two free-riders that never upload.
        #[derive(Clone, Debug)]
        struct Null;
        impl coop_incentives::Mechanism for Null {
            fn kind(&self) -> MechanismKind {
                MechanismKind::TChain
            }
            fn clone_box(&self) -> Box<dyn coop_incentives::Mechanism> {
                Box::new(self.clone())
            }
            fn allocate(
                &mut self,
                _view: &dyn coop_incentives::SwarmView,
                _budget: u64,
                _rng: &mut dyn rand::RngCore,
            ) -> Vec<coop_incentives::Grant> {
                Vec::new()
            }
        }
        for spec in population.iter_mut().take(2) {
            spec.tags = PeerTags {
                compliant: false,
                ..PeerTags::compliant()
            };
            spec.mechanism = Box::new(|| Box::new(Null));
        }
        let r = Simulation::builder(config)
            .population(population)
            .build()
            .unwrap()
            .run();
        // Free-riders can receive seeder bytes, but nothing usable from
        // T-Chain peers beyond that.
        for p in r.freeriders() {
            assert!(
                p.bytes_received_usable <= r.totals.uploaded_seeder,
                "free-rider usable bytes bounded by seeder output"
            );
        }
    }

    #[test]
    fn whitewashing_creates_successor_identities() {
        let mut config = SwarmConfig::tiny_test();
        config.max_rounds = 30;
        let mut population = flash_crowd(&config, 6, MechanismKind::FairTorrent, 13);
        population[0].tags = PeerTags {
            compliant: false,
            whitewash_interval: Some(5),
            ..PeerTags::compliant()
        };
        let r = Simulation::builder(config)
            .population(population)
            .build()
            .unwrap()
            .run();
        assert!(
            r.peers.len() > 6,
            "whitewasher should have spawned successor identities"
        );
        assert!(r.freeriders().count() > 1);
    }

    #[test]
    fn seeder_bootstraps_a_lone_peer() {
        let config = SwarmConfig::tiny_test();
        let population = flash_crowd(&config, 1, MechanismKind::BitTorrent, 17);
        let r = Simulation::builder(config)
            .population(population)
            .build()
            .unwrap()
            .run();
        assert_eq!(r.completed_count(), 1, "seeder alone must complete one peer");
    }

    #[test]
    fn bandwidth_attribution_matches_mechanism_structure() {
        use coop_incentives::GrantReason;
        // Altruism moves peer bytes only under the Altruism reason.
        let r = run_kind(MechanismKind::Altruism, 12, 31);
        assert!(r.reason_fraction(GrantReason::Altruism) > 0.999);
        // BitTorrent's optimistic share sits near α_BT = 0.2 of its peer
        // bytes (tit-for-tat takes the rest).
        let r = run_kind(MechanismKind::BitTorrent, 12, 31);
        let opt = r.reason_fraction(GrantReason::OptimisticUnchoke);
        // At this tiny scale much of the tit-for-tat share idles early
        // (targets do not yet need the uploader's few pieces), so the
        // optimistic fraction lands well above α_BT; it must still be a
        // minority share with tit-for-tat carrying real weight.
        assert!(
            (0.05..=0.6).contains(&opt),
            "optimistic share {opt} out of range"
        );
        assert!(r.reason_fraction(GrantReason::TitForTat) > 0.3);
        // T-Chain's bytes are all reciprocity-flavored (direct, indirect,
        // or obligation service).
        let r = run_kind(MechanismKind::TChain, 12, 31);
        let tchain_total = r.reason_fraction(GrantReason::Reciprocity)
            + r.reason_fraction(GrantReason::IndirectReciprocity)
            + r.reason_fraction(GrantReason::Obligation);
        assert!(tchain_total > 0.999, "{tchain_total}");
    }

    #[test]
    fn rarest_first_keeps_higher_piece_diversity_than_sequential() {
        let run_with = |strategy| {
            let mut config = SwarmConfig::tiny_test();
            config.seed = 33;
            config.piece_strategy = strategy;
            // Sample diversity mid-download: stop early.
            config.max_rounds = 12;
            let population = flash_crowd(&config, 12, MechanismKind::Altruism, 33);
            Simulation::builder(config)
            .population(population)
            .build()
            .unwrap()
            .run()
        };
        let rarest = run_with(crate::config::PieceStrategy::RarestFirst);
        let sequential = run_with(crate::config::PieceStrategy::Sequential);
        let last = |r: &SimResult| r.diversity.last_value().unwrap_or(0.0);
        assert!(
            last(&rarest) >= last(&sequential),
            "rarest-first diversity {} ≥ sequential {}",
            last(&rarest),
            last(&sequential)
        );
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut config = SwarmConfig::tiny_test();
        config.neighbor_degree = 0;
        assert!(Simulation::builder(config).build().is_err());
    }

    #[test]
    fn empty_fault_schedule_is_identity() {
        use crate::faults::FaultSchedule;
        let baseline = run_kind(MechanismKind::BitTorrent, 10, 7);
        let mut config = SwarmConfig::tiny_test();
        config.seed = 7;
        let population = flash_crowd(&config, 10, MechanismKind::BitTorrent, 7);
        let with_empty = Simulation::builder(config)
            .population(population)
            .fault_schedule(FaultSchedule::empty())
            .build()
            .unwrap()
            .run();
        assert_eq!(baseline, with_empty, "empty schedule must be the identity");
        assert!(!with_empty.stalled);
    }

    #[test]
    fn churned_peer_departs_without_completing() {
        use crate::faults::{FaultEvent, FaultKind, FaultSchedule};
        let mut config = SwarmConfig::tiny_test();
        config.seed = 21;
        let mut population = flash_crowd(&config, 10, MechanismKind::Altruism, 21);
        // Pin every arrival to t=0 so spec order is spawn order and the
        // departure round is unambiguously after arrival.
        for spec in &mut population {
            spec.arrival = SimTime::ZERO;
        }
        let schedule = FaultSchedule::from_events(
            vec![FaultEvent {
                round: 3,
                peer: 0,
                kind: FaultKind::Depart,
            }],
            0.0,
            0,
        );
        let r = Simulation::builder(config)
            .population(population)
            .fault_schedule(schedule)
            .build()
            .unwrap()
            .run();
        // All arrivals fire at t=0 in spec order, so spec 0 is peer 0.
        assert!(r.peers[0].completion_s.is_none(), "churned peer never completes");
        assert!(!r.stalled, "live seeder keeps the swarm satisfiable");
        assert!(
            r.completed_count() >= 8,
            "the rest of the swarm completes: {}",
            r.completed_count()
        );
    }

    #[test]
    fn outage_peer_resumes_and_completes() {
        use crate::faults::{FaultEvent, FaultKind, FaultSchedule};
        let mut config = SwarmConfig::tiny_test();
        config.seed = 23;
        let mut population = flash_crowd(&config, 10, MechanismKind::Altruism, 23);
        for spec in &mut population {
            spec.arrival = SimTime::ZERO;
        }
        let schedule = FaultSchedule::from_events(
            vec![
                FaultEvent {
                    round: 2,
                    peer: 0,
                    kind: FaultKind::OutageStart,
                },
                FaultEvent {
                    round: 8,
                    peer: 0,
                    kind: FaultKind::OutageEnd,
                },
            ],
            0.0,
            0,
        );
        let r = Simulation::builder(config)
            .population(population)
            .fault_schedule(schedule)
            .build()
            .unwrap()
            .run();
        assert!(
            r.peers[0].completion_s.is_some(),
            "peer re-enters after the outage and finishes"
        );
        assert!(r.completed_fraction() > 0.9);
    }

    #[test]
    fn link_loss_conserves_bytes_and_is_survivable() {
        use crate::faults::FaultSchedule;
        let mut config = SwarmConfig::tiny_test();
        config.seed = 29;
        let population = flash_crowd(&config, 10, MechanismKind::Altruism, 29);
        let schedule = FaultSchedule::from_events(Vec::new(), 0.2, 29);
        let r = Simulation::builder(config)
            .population(population)
            .fault_schedule(schedule)
            .build()
            .unwrap()
            .run();
        assert!(r.totals.fault_dropped_bytes > 0, "20% loss drops something");
        let sent: u64 =
            r.peers.iter().map(|p| p.bytes_sent).sum::<u64>() + r.totals.uploaded_seeder;
        let received: u64 = r.peers.iter().map(|p| p.bytes_received_raw).sum();
        assert_eq!(
            sent,
            received + r.totals.fault_dropped_bytes,
            "uploaded = downloaded + dropped"
        );
        assert!(
            r.completed_fraction() > 0.9,
            "lost pieces are re-fetched: {}",
            r.completed_fraction()
        );
    }

    #[test]
    fn early_seeder_failure_stalls_the_swarm() {
        use crate::faults::FaultSchedule;
        let mut config = SwarmConfig::tiny_test();
        config.seed = 31;
        let population = flash_crowd(&config, 6, MechanismKind::Altruism, 31);
        let mut schedule = FaultSchedule::empty();
        schedule.seeder_failure_round = Some(1);
        let r = Simulation::builder(config.clone())
            .population(population)
            .fault_schedule(schedule)
            .build()
            .unwrap()
            .run();
        assert!(r.stalled, "missing pieces can never be recovered");
        assert!(
            r.rounds_run < config.max_rounds,
            "stall detection terminates early ({} rounds)",
            r.rounds_run
        );
        assert_eq!(r.completed_count(), 0, "nobody had the full file");
    }

    #[test]
    fn naive_hotpath_is_observationally_identical() {
        // The fast path (incremental availability index, SoA membership
        // scans, dirty-tracked adjacency) must be indistinguishable from
        // the pre-index scans, mechanism by mechanism.
        for kind in MechanismKind::ALL {
            let run = |naive: bool| {
                let mut config = SwarmConfig::tiny_test();
                config.seed = 47;
                let population = flash_crowd(&config, 14, kind, 47);
                Simulation::builder(config)
                    .population(population)
                    .naive_hotpath(naive)
                    .build()
                    .unwrap()
                    .run()
            };
            assert_eq!(run(false), run(true), "{kind}: hot path diverged from oracle");
        }
    }

    #[test]
    fn naive_hotpath_identical_under_faults() {
        use crate::faults::{FaultEvent, FaultKind, FaultSchedule};
        let run = |naive: bool| {
            let mut config = SwarmConfig::tiny_test();
            config.seed = 53;
            let mut population = flash_crowd(&config, 12, MechanismKind::BitTorrent, 53);
            for spec in &mut population {
                spec.arrival = SimTime::ZERO;
            }
            let schedule = FaultSchedule::from_events(
                vec![
                    FaultEvent { round: 2, peer: 1, kind: FaultKind::OutageStart },
                    FaultEvent { round: 3, peer: 0, kind: FaultKind::Depart },
                    FaultEvent { round: 6, peer: 1, kind: FaultKind::OutageEnd },
                ],
                0.1,
                53,
            );
            Simulation::builder(config)
                .population(population)
                .fault_schedule(schedule)
                .naive_hotpath(naive)
                .build()
                .unwrap()
                .run()
        };
        assert_eq!(run(false), run(true), "fault paths diverged from oracle");
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_new_shim_still_works() {
        let config = SwarmConfig::tiny_test();
        let population = flash_crowd(&config, 4, MechanismKind::Altruism, 3);
        let r = Simulation::new(config, population).unwrap().run();
        assert!(r.rounds_run > 0);
        // The shim surfaces the builder's eager checks as ConfigErrors.
        assert!(Simulation::new(SwarmConfig::tiny_test(), Vec::new()).is_err());
    }
}
