//! Pre-drawn, seed-stamped fault schedules (churn, outages, message loss,
//! seeder failure).
//!
//! The simulator never draws fault randomness in the round loop. Instead a
//! [`FaultPatch`] (implemented by `coop_faults::FaultPlan`) compiles a
//! scenario description into a [`FaultSchedule`] at build time: every
//! departure round, every outage window and the loss-stream seed are fixed
//! before the first round runs. The round hot path then only advances a
//! cursor over the sorted event list — branch-cheap, allocation-free, and
//! byte-reproducible for any worker count, because nothing about fault
//! timing depends on execution order.
//!
//! Per-transfer message loss is the one fault decided during the run, and
//! it is decided by a *pure hash* of `(loss_seed, from, to, piece, round)`
//! — not by a shared RNG stream — so the decision for one transfer is
//! independent of how many other transfers ran before it.

use coop_des::rng::SeedTree;

use crate::config::{PeerSpec, SwarmConfig};

/// What happens to one peer at one round.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// The peer goes dark, keeping its bitfield (transient outage).
    OutageStart,
    /// The peer comes back online with the bitfield it went dark with.
    OutageEnd,
    /// The peer leaves the swarm for good (churn departure).
    Depart,
}

impl FaultKind {
    /// The name used in telemetry output.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::OutageStart => "outage_start",
            FaultKind::OutageEnd => "outage_end",
            FaultKind::Depart => "churn_depart",
        }
    }
}

/// One scheduled fault, keyed by the population *spec index* (stable
/// across runs; the simulator resolves it to the spawned peer id).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct FaultEvent {
    /// The round at which the fault applies (applied at the top of that
    /// round, before any allocation).
    pub round: u64,
    /// Index into the population vector handed to the builder.
    pub peer: usize,
    /// What happens.
    pub kind: FaultKind,
}

/// A compiled, fully pre-drawn fault scenario for one run.
///
/// [`FaultSchedule::empty`] is the identity: a simulation assembled with it
/// takes exactly the branches of one assembled with no schedule at all, so
/// zero-rate plans are byte-identical to the fault-free baseline.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
    /// Probability that a completed piece transfer is lost in transit
    /// (decided per `(link, piece, round)` by a pure hash; 0 disables).
    pub loss_prob: f64,
    /// Seed of the loss hash stream (only consulted when `loss_prob > 0`).
    pub loss_seed: u64,
    /// The seeder leaves once this fraction of the expected compliant
    /// population has completed ("selfish leech-off").
    pub seeder_exit_fraction: Option<f64>,
    /// The seeder fails permanently at the start of this round.
    pub seeder_failure_round: Option<u64>,
}

impl Default for FaultSchedule {
    fn default() -> Self {
        FaultSchedule::empty()
    }
}

impl FaultSchedule {
    /// The fault-free schedule (the identity element).
    pub fn empty() -> Self {
        FaultSchedule {
            events: Vec::new(),
            loss_prob: 0.0,
            loss_seed: 0,
            seeder_exit_fraction: None,
            seeder_failure_round: None,
        }
    }

    /// Builds a schedule from events (sorted here; callers need not
    /// pre-sort) and link-loss parameters.
    pub fn from_events(mut events: Vec<FaultEvent>, loss_prob: f64, loss_seed: u64) -> Self {
        events.sort_unstable();
        FaultSchedule {
            events,
            loss_prob,
            loss_seed,
            seeder_exit_fraction: None,
            seeder_failure_round: None,
        }
    }

    /// The scheduled events, sorted by `(round, peer, kind)`.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True when the schedule can never change a run: no events, no loss,
    /// and no seeder fault.
    pub fn is_inert(&self) -> bool {
        self.events.is_empty()
            && self.loss_prob <= 0.0
            && self.seeder_exit_fraction.is_none()
            && self.seeder_failure_round.is_none()
    }

    /// Checks the schedule's structural invariants against a population of
    /// `population_len` specs:
    ///
    /// - every event's peer index is in range;
    /// - per peer: at most one departure, outages alternate
    ///   start → end with positive length, and no outage overlaps the
    ///   departure (the departure round is at or after every outage end);
    /// - `loss_prob` is a probability; `seeder_exit_fraction` is in
    ///   `(0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self, population_len: usize) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.loss_prob) || !self.loss_prob.is_finite() {
            return Err(format!("loss_prob must be in [0, 1], got {}", self.loss_prob));
        }
        if let Some(f) = self.seeder_exit_fraction {
            if !(f > 0.0 && f <= 1.0) {
                return Err(format!(
                    "seeder_exit_fraction must be in (0, 1], got {f}"
                ));
            }
        }
        for w in self.events.windows(2) {
            if w[0] > w[1] {
                return Err(format!("events out of order: {:?} before {:?}", w[0], w[1]));
            }
        }
        // Per-peer structural walk. Events are globally sorted, so each
        // peer's subsequence is sorted too.
        let mut peers: Vec<usize> = self.events.iter().map(|e| e.peer).collect();
        peers.sort_unstable();
        peers.dedup();
        for peer in peers {
            if peer >= population_len {
                return Err(format!(
                    "fault event targets spec index {peer}, population has {population_len}"
                ));
            }
            let mut open_outage: Option<u64> = None;
            let mut departed: Option<u64> = None;
            for ev in self.events.iter().filter(|e| e.peer == peer) {
                if let Some(d) = departed {
                    return Err(format!(
                        "peer {peer}: event {ev:?} after departure at round {d}"
                    ));
                }
                match ev.kind {
                    FaultKind::OutageStart => {
                        if open_outage.is_some() {
                            return Err(format!("peer {peer}: nested outage at round {}", ev.round));
                        }
                        open_outage = Some(ev.round);
                    }
                    FaultKind::OutageEnd => match open_outage.take() {
                        Some(start) if ev.round > start => {}
                        Some(start) => {
                            return Err(format!(
                                "peer {peer}: outage [{start}, {}] has no length",
                                ev.round
                            ));
                        }
                        None => {
                            return Err(format!(
                                "peer {peer}: outage end at round {} without a start",
                                ev.round
                            ));
                        }
                    },
                    FaultKind::Depart => {
                        if open_outage.is_some() {
                            return Err(format!(
                                "peer {peer}: departure at round {} inside an outage",
                                ev.round
                            ));
                        }
                        departed = Some(ev.round);
                    }
                }
            }
            if let Some(start) = open_outage {
                return Err(format!("peer {peer}: outage starting at round {start} never ends"));
            }
        }
        Ok(())
    }

    /// The pure-hash loss decision for one completed piece transfer on the
    /// link `from → to` at `round`. Deterministic in the schedule's
    /// `loss_seed` and the arguments alone — independent of evaluation
    /// order, worker count, and every other transfer — and fresh per
    /// round, so a re-fetched piece on a lossy link is not doomed forever.
    pub fn drops_piece(&self, from: u32, to: u32, piece: u32, round: u64) -> bool {
        if self.loss_prob <= 0.0 {
            return false;
        }
        let link = (u64::from(from) << 32) | u64::from(to);
        let draw = SeedTree::new(self.loss_seed)
            .subtree(link)
            .child_seed((u64::from(piece) << 32) | round);
        // 53 mantissa bits of the hash as a uniform draw in [0, 1).
        let unit = (draw >> 11) as f64 / (1u64 << 53) as f64;
        unit < self.loss_prob
    }
}

/// Compiles a fault scenario into a [`FaultSchedule`] at build time.
///
/// The sibling of [`PopulationPatch`](crate::PopulationPatch):
/// `coop_faults::FaultPlan` implements this so fault scenarios plug into
/// [`SimulationBuilder::fault_plan`](crate::SimulationBuilder::fault_plan)
/// without a dependency cycle. The patch may also adjust the population's
/// arrival times (staggered Poisson arrivals) before drawing the schedule.
pub trait FaultPatch {
    /// Draws the complete fault schedule for this population, using only
    /// randomness derived from `config.seed`. May mutate arrival times.
    fn compile_faults(&self, population: &mut [PeerSpec], config: &SwarmConfig) -> FaultSchedule;
}

/// Closures can serve as ad-hoc fault patches (tests use this).
impl<F: Fn(&mut [PeerSpec], &SwarmConfig) -> FaultSchedule> FaultPatch for F {
    fn compile_faults(&self, population: &mut [PeerSpec], config: &SwarmConfig) -> FaultSchedule {
        self(population, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(round: u64, peer: usize, kind: FaultKind) -> FaultEvent {
        FaultEvent { round, peer, kind }
    }

    #[test]
    fn empty_schedule_is_inert_and_valid() {
        let s = FaultSchedule::empty();
        assert!(s.is_inert());
        assert!(s.validate(0).is_ok());
        assert!(!s.drops_piece(0, 1, 2, 3), "zero loss never drops");
    }

    #[test]
    fn from_events_sorts() {
        let s = FaultSchedule::from_events(
            vec![
                ev(9, 1, FaultKind::Depart),
                ev(2, 0, FaultKind::OutageStart),
                ev(4, 0, FaultKind::OutageEnd),
            ],
            0.0,
            7,
        );
        assert_eq!(s.events()[0].round, 2);
        assert_eq!(s.events()[2].round, 9);
        assert!(s.validate(2).is_ok());
        assert!(!s.is_inert());
    }

    #[test]
    fn validate_rejects_structural_violations() {
        // Out-of-range peer.
        let s = FaultSchedule::from_events(vec![ev(1, 5, FaultKind::Depart)], 0.0, 0);
        assert!(s.validate(3).is_err());
        // Event after departure.
        let s = FaultSchedule::from_events(
            vec![ev(1, 0, FaultKind::Depart), ev(2, 0, FaultKind::OutageStart)],
            0.0,
            0,
        );
        assert!(s.validate(1).is_err());
        // Unclosed outage.
        let s = FaultSchedule::from_events(vec![ev(1, 0, FaultKind::OutageStart)], 0.0, 0);
        assert!(s.validate(1).is_err());
        // Zero-length outage.
        let s = FaultSchedule::from_events(
            vec![ev(1, 0, FaultKind::OutageStart), ev(1, 0, FaultKind::OutageEnd)],
            0.0,
            0,
        );
        assert!(s.validate(1).is_err());
        // Bad probabilities.
        let mut s = FaultSchedule::empty();
        s.loss_prob = 1.5;
        assert!(s.validate(0).is_err());
        let mut s = FaultSchedule::empty();
        s.seeder_exit_fraction = Some(0.0);
        assert!(s.validate(0).is_err());
    }

    #[test]
    fn same_round_outage_end_sorts_before_departure() {
        let s = FaultSchedule::from_events(
            vec![
                ev(5, 0, FaultKind::Depart),
                ev(5, 0, FaultKind::OutageEnd),
                ev(3, 0, FaultKind::OutageStart),
            ],
            0.0,
            0,
        );
        assert_eq!(s.events()[1].kind, FaultKind::OutageEnd);
        assert_eq!(s.events()[2].kind, FaultKind::Depart);
        assert!(s.validate(1).is_ok(), "outage closed at the departure round");
    }

    #[test]
    fn loss_hash_is_pure_and_rate_accurate() {
        let mut s = FaultSchedule::empty();
        s.loss_prob = 0.25;
        s.loss_seed = 99;
        // Pure: same inputs, same verdict.
        assert_eq!(s.drops_piece(1, 2, 3, 4), s.drops_piece(1, 2, 3, 4));
        // Round-fresh: the same (link, piece) redraws each round.
        let per_round: Vec<bool> = (0..64).map(|r| s.drops_piece(1, 2, 3, r)).collect();
        assert!(per_round.iter().any(|&d| d) && per_round.iter().any(|&d| !d));
        // Rate lands near the configured probability.
        let drops = (0..4000)
            .filter(|&i| s.drops_piece(i % 17, i % 13, i, u64::from(i / 31)))
            .count();
        let rate = drops as f64 / 4000.0;
        assert!((0.18..=0.32).contains(&rate), "loss rate {rate}");
    }
}
