//! Mid-run simulation checkpoints.
//!
//! A [`SimCheckpoint`] is a complete snapshot of a running
//! [`Simulation`](crate::Simulation) taken at a round boundary: every
//! peer's deep-cloned state (bitfields, ledgers, obligations and the
//! boxed mechanism via `Mechanism::clone_box`), the transfer table, the
//! reputation state, the fault-schedule cursor, the SoA hot mirror and
//! CSR adjacency, all result accumulators, the DES engine's pending
//! event queue *with its FIFO sequence counter*
//! ([`EngineSnapshot`](coop_des::EngineSnapshot)), and the seed tree's
//! stream state ([`SeedTree::export`](coop_des::rng::SeedTree::export) —
//! positionless, so the root seed plus the restored round index pins
//! every RNG stream).
//!
//! The contract — pinned by `crates/swarm/tests/checkpoint_equivalence.rs`
//! for all six mechanisms — is exact: build a fresh simulation from the
//! same config and population, [`Simulation::restore`](crate::Simulation::restore)
//! a checkpoint onto it, finish the run, and the [`SimResult`](crate::SimResult)
//! equals the straight-through run byte for byte. Checkpoints capture
//! state; they do not capture the telemetry recorder (observation is not
//! simulation state) or the unspawned arrival specs, whose mechanism
//! factories are closures — the fresh simulation re-supplies both, and
//! restore validates that its config and population shape match.

use coop_des::EngineSnapshot;
use coop_incentives::ledger::{ReportedReputation, ReputationTable};
use coop_incentives::metrics::TimeSeries;
use coop_incentives::{GrantReason, PeerId};
use coop_piece::{AvailabilityIndex, Bitfield};

use crate::peer::PeerState;
use crate::result::Totals;
use crate::sim::Event;
use crate::soa::HotPeers;
use crate::transfer::TransferTable;
use crate::SwarmConfig;

/// Why a checkpoint could not be restored.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// The target simulation has already started running; restore needs a
    /// freshly built one.
    NotFresh,
    /// The target simulation was built from a different configuration.
    ConfigMismatch,
    /// The target population's shape (spec count) differs from the
    /// checkpointed run's.
    PopulationMismatch {
        /// Spec count in the checkpoint.
        expected: usize,
        /// Spec count in the target simulation.
        found: usize,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::NotFresh => {
                write!(f, "checkpoints restore onto freshly built simulations only")
            }
            CheckpointError::ConfigMismatch => {
                write!(f, "checkpoint was taken under a different configuration")
            }
            CheckpointError::PopulationMismatch { expected, found } => write!(
                f,
                "checkpoint population has {expected} specs, target has {found}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// The full captured state (crate-private; [`SimCheckpoint`] is the
/// opaque public handle).
#[derive(Clone)]
pub(crate) struct CheckpointState {
    pub(crate) config: SwarmConfig,
    pub(crate) engine: EngineSnapshot<Event>,
    /// The seed tree's exported stream state (see module docs).
    pub(crate) seed_state: u64,
    pub(crate) peers: Vec<PeerState>,
    pub(crate) availability: AvailabilityIndex,
    pub(crate) transfers: TransferTable,
    pub(crate) reputation: ReputationTable,
    pub(crate) seeder_bf: Bitfield,
    pub(crate) round_idx: u64,
    pub(crate) now: coop_des::SimTime,
    pub(crate) expected_compliant: usize,
    pub(crate) reports: ReportedReputation,
    pub(crate) pretrusted: Vec<PeerId>,
    pub(crate) trusted_cache: std::collections::HashMap<PeerId, f64>,
    pub(crate) adj: Vec<PeerId>,
    pub(crate) adj_off: Vec<u32>,
    pub(crate) adj_dirty: bool,
    pub(crate) adjacency_rebuilds: u64,
    pub(crate) hot: HotPeers,
    pub(crate) pending_arrivals: usize,
    pub(crate) open_active: usize,
    pub(crate) compliant_completed: usize,
    pub(crate) naive_hotpath: bool,
    /// The dirty-set membership (sorted peer indices) at capture time, so
    /// a restored run rebuilds exactly the same visit sets — and hence
    /// the same work counters — as the straight-through run.
    pub(crate) dirty: Vec<u32>,
    pub(crate) naive_probe_rebuilds: u64,
    pub(crate) work_visited: u64,
    pub(crate) work_productive: u64,
    pub(crate) work_candidate_scans: u64,
    pub(crate) epoch_settlements: u64,
    pub(crate) epoch_boundaries: u64,
    pub(crate) consensus: Option<crate::consensus::ConsensusState>,
    pub(crate) probe_prev_bytes: [u64; GrantReason::ALL.len()],
    pub(crate) faults: crate::faults::FaultSchedule,
    pub(crate) fault_cursor: usize,
    pub(crate) spec_peer: Vec<Option<PeerId>>,
    pub(crate) seeder_online: bool,
    pub(crate) stalled: bool,
    pub(crate) prev_uploaded_total: u64,
    pub(crate) totals: Totals,
    pub(crate) fairness_avg: TimeSeries,
    pub(crate) diversity: TimeSeries,
    pub(crate) fairness_stat: TimeSeries,
    pub(crate) bootstrapped_frac: TimeSeries,
    pub(crate) completed_frac: TimeSeries,
    pub(crate) susceptibility: TimeSeries,
}

/// A point-in-time snapshot of a running simulation (see module docs).
#[derive(Clone)]
pub struct SimCheckpoint {
    pub(crate) state: Box<CheckpointState>,
}

impl SimCheckpoint {
    /// The round index the checkpoint was taken at (the next round to
    /// execute after restore).
    pub fn round(&self) -> u64 {
        self.state.round_idx
    }

    /// Events pending in the captured engine queue.
    pub fn pending_events(&self) -> usize {
        self.state.engine.pending()
    }

    /// The exported RNG stream state (the seed-tree root; streams are
    /// positionless — see the module docs).
    pub fn seed_state(&self) -> u64 {
        self.state.seed_state
    }
}

impl std::fmt::Debug for SimCheckpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimCheckpoint")
            .field("round", &self.state.round_idx)
            .field("peers", &self.state.peers.len())
            .field("pending_events", &self.state.engine.pending())
            .finish_non_exhaustive()
    }
}

/// The checkpoints a run captured (`--checkpoint-every`), bounded in
/// memory: the first and the latest snapshot are kept, plus a count.
#[derive(Clone, Debug, Default)]
pub struct CheckpointLog {
    taken: u64,
    first: Option<SimCheckpoint>,
    latest: Option<SimCheckpoint>,
}

impl CheckpointLog {
    /// Number of checkpoints captured during the run.
    pub fn taken(&self) -> u64 {
        self.taken
    }

    /// The earliest captured checkpoint, if any.
    pub fn first(&self) -> Option<&SimCheckpoint> {
        self.first.as_ref()
    }

    /// The most recent captured checkpoint, if any.
    pub fn latest(&self) -> Option<&SimCheckpoint> {
        self.latest.as_ref()
    }

    pub(crate) fn record(&mut self, checkpoint: SimCheckpoint) {
        self.taken += 1;
        if self.first.is_none() {
            self.first = Some(checkpoint.clone());
        }
        self.latest = Some(checkpoint);
    }
}
