//! # coop-swarm
//!
//! The event-driven P2P swarm simulator substrate used to validate the
//! incentive-mechanism analysis (Section V of the paper). It reproduces the
//! paper's experimental setup: one seeder, a flash crowd of users arriving
//! within the first seconds, a file divided into pieces, per-round upload
//! budgets, and immediate departure on completion.
//!
//! The simulator is written from scratch (the paper adapted the
//! unpublished TBeT simulator; see DESIGN.md for the substitution
//! rationale) on top of:
//!
//! * `coop_des` — the deterministic discrete-event engine,
//! * `coop_piece` — bitfields, piece pickers, availability tracking,
//! * `coop_incentives` — the six mechanisms and their shared state.
//!
//! Attack support (large-view neighbor sets, collusion rings, whitewashing
//! identities) is implemented as generic substrate features driven by
//! [`PeerTags`]; the `coop-attacks` crate composes them into the paper's
//! attack scenarios.
//!
//! # Example
//!
//! ```
//! use coop_swarm::{flash_crowd, Simulation, SwarmConfig};
//! use coop_incentives::MechanismKind;
//!
//! let config = SwarmConfig::tiny_test();
//! let population = flash_crowd(&config, 12, MechanismKind::Altruism, 7);
//! let result = Simulation::builder(config)
//!     .population(population)
//!     .build()
//!     .unwrap()
//!     .run();
//! assert!(result.completed_count() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod checkpoint;
mod config;
mod consensus;
mod dirty;
mod faults;
mod peer;
mod result;
mod shard;
mod sim;
mod soa;
mod transfer;
mod view_impl;

pub use builder::{BuildError, PopulationPatch, SimulationBuilder};
pub use checkpoint::{CheckpointError, CheckpointLog, SimCheckpoint};
pub use config::{
    flash_crowd, flash_crowd_with, staggered_arrivals, ConfigError, MechanismFactory, PeerSpec,
    PeerTags, PieceStrategy, SwarmConfig,
};
pub use faults::{FaultEvent, FaultKind, FaultPatch, FaultSchedule};
pub use dirty::{DirtySet, VisitBits};
pub use result::{ConsensusSummary, PeerRecord, SimResult, Totals};
pub use sim::{RoundLoop, Simulation, SEEDER_ID};
