//! Scratch probe: visit counts and wall time, indexed vs dirty round loop.

use coop_des::Duration;
use coop_incentives::analysis::capacity::CapacityClassMix;
use coop_incentives::MechanismKind;
use coop_piece::FileSpec;
use coop_swarm::{flash_crowd_with, RoundLoop, Simulation, SwarmConfig};
use coop_telemetry::{profile::work, Profiler, Recorder, TelemetryConfig};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5000);
    let kind = match std::env::args().nth(2).as_deref() {
        Some("reciprocity") => MechanismKind::Reciprocity,
        Some("tchain") => MechanismKind::TChain,
        Some("fairtorrent") => MechanismKind::FairTorrent,
        Some("reputation") => MechanismKind::Reputation,
        Some("altruism") => MechanismKind::Altruism,
        _ => MechanismKind::BitTorrent,
    };
    // Mirrors fig4-scale's quick cell config (the acceptance workload).
    let mut config = SwarmConfig::scaled_default();
    config.file = FileSpec::new(2 * 1024 * 1024, 64 * 1024);
    config.neighbor_degree = 20;
    config.seeder_bps = 512_000.0;
    config.max_rounds = 300;
    config.sample_every = 8;
    config.seed = 42;

    let mut results = Vec::new();
    for loop_kind in [RoundLoop::Indexed, RoundLoop::Dirty] {
        let population = flash_crowd_with(
            &config,
            n,
            kind,
            42,
            &CapacityClassMix::paper_default(),
            Duration::from_secs(10),
        );
        let t0 = std::time::Instant::now();
        let (result, report, profile) = Simulation::builder(config.clone())
            .population(population)
            .round_loop(loop_kind)
            .recorder(Recorder::enabled(TelemetryConfig::default()))
            .profiler(Profiler::enabled())
            .build()
            .expect("config validates")
            .run_profiled();
        let dt = t0.elapsed().as_secs_f64();
        println!(
            "{loop_kind:?}: {:.2}s  {:.1} r/s  visited={} productive={} scans={}",
            dt,
            result.rounds_run as f64 / dt,
            report.counter(work::PEERS_VISITED),
            report.counter(work::PEERS_PRODUCTIVE),
            report.counter(work::CANDIDATE_SCANS),
        );
        let mut phases: Vec<_> = profile.phases.iter().collect();
        phases.sort_by_key(|p| std::cmp::Reverse(p.1.total_ns));
        for (name, stat) in phases.iter().take(12) {
            println!(
                "  {name:<22} {:>9.1} ms  ({} calls)",
                stat.total_ns as f64 / 1e6,
                stat.count
            );
        }
        results.push(result);
    }
    assert_eq!(results[0], results[1], "loops diverged");
    println!("results identical");
}
