//! Debug probe for large-view wiring.
use coop_attacks::FreeRider;
use coop_des::Duration;
use coop_incentives::analysis::capacity::CapacityClassMix;
use coop_incentives::MechanismKind;
use coop_swarm::*;

fn main() {
    for large_view in [false, true] {
        let mut config = SwarmConfig::tiny_test();
        config.seed = 301;
        config.neighbor_degree = 4;
        config.file = coop_piece::FileSpec::new(4 * 1024 * 1024, 16 * 1024);
        config.seeder_bps = 256_000.0;
        config.max_rounds = 25;
        let mut pop = flash_crowd_with(
            &config, 40, MechanismKind::Altruism, 301,
            &CapacityClassMix::paper_default(), Duration::from_secs(3),
        );
        pop[0].tags = PeerTags { compliant: false, large_view, ..PeerTags::compliant() };
        pop[0].mechanism = Box::new(|| Box::new(FreeRider::new(MechanismKind::Altruism)));
        eprintln!("lv={large_view} fr_arrival={:?}", pop[0].arrival);
        let r = Simulation::builder(config).population(pop).build().unwrap().run();
        let fr: Vec<_> = r.freeriders().collect();
        let fingerprint: u64 = r
            .peers
            .iter()
            .map(|p| p.bytes_sent.wrapping_mul(31).wrapping_add(p.bytes_received_raw))
            .fold(0u64, |a, x| a.wrapping_mul(1000003).wrapping_add(x));
        eprintln!(
            "lv={large_view} fr_id={:?} fr_recv_peers={} fr_raw={} rounds={} fp={fingerprint}",
            fr[0].id,
            r.totals.freerider_received_from_peers,
            fr[0].bytes_received_raw,
            r.rounds_run,
        );
    }
}
