//! Internal probe: susceptibility under per-algorithm worst attacks.
use coop_attacks::{apply_attack, AttackPlan};
use coop_incentives::MechanismKind;
use coop_swarm::*;

fn main() {
    let mut config = SwarmConfig::scaled_default();
    config.file = coop_piece::FileSpec::new(4 * 1024 * 1024, 64 * 1024);
    config.max_rounds = 900;
    config.neighbor_degree = 20;
    for large_view in [false, true] {
        println!("--- large_view={large_view}");
        for kind in MechanismKind::ALL {
            let mut population = flash_crowd(&config, 80, kind, 99);
            let plan = if large_view {
                AttackPlan::with_large_view(kind, 0.2)
            } else {
                AttackPlan::most_effective(kind, 0.2)
            };
            apply_attack(&mut population, &plan, 99);
            let r = Simulation::builder(config.clone())
            .population(population)
            .build()
            .unwrap()
            .run();
            println!(
                "{:<12} susc={:.4} peak={:.4} compl={:.2} mean_ct={:>7.1} avg_fair={:.3?} F={:.3}",
                kind.name(),
                r.final_susceptibility(),
                r.peak_susceptibility(),
                r.completed_fraction(),
                r.mean_completion_time().unwrap_or(f64::NAN),
                r.final_avg_fairness().unwrap_or(f64::NAN),
                r.final_fairness_stat(),
            );
        }
    }
}
