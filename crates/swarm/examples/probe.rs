//! Internal debugging probe: prints mechanism comparison metrics.
use coop_incentives::MechanismKind;
use coop_swarm::*;

fn main() {
    let mut config = SwarmConfig::scaled_default();
    config.file = coop_piece::FileSpec::new(4 * 1024 * 1024, 64 * 1024); // 64 pieces
    config.max_rounds = 900;
    config.neighbor_degree = 20;
    let only: Option<String> = std::env::var("PROBE_ONLY").ok();
    for kind in MechanismKind::ALL {
        if let Some(ref o) = only {
            if kind.name() != o {
                continue;
            }
        }
        let population = flash_crowd(&config, 80, kind, 99);
        let t0 = std::time::Instant::now();
        let r = Simulation::builder(config.clone())
            .population(population)
            .build()
            .unwrap()
            .run();
        println!(
            "{:<12} compl={:.2} mean_ct={:>7.1?} boot={:.2} mean_bt={:>6.2?} avg_fair={:.3?} F={:.3} rounds={} wall={:?}",
            kind.name(),
            r.completed_fraction(),
            r.mean_completion_time().unwrap_or(f64::NAN),
            r.bootstrapped_fraction(),
            r.mean_bootstrap_time().unwrap_or(f64::NAN),
            r.final_avg_fairness().unwrap_or(f64::NAN),
            r.final_fairness_stat(),
            r.rounds_run,
            t0.elapsed(),
        );
        println!(
            "   aborted={} ({:.1}% of upload)",
            r.totals.aborted_bytes,
            100.0 * r.totals.aborted_bytes as f64 / r.totals.uploaded_total().max(1) as f64
        );
        if kind == MechanismKind::TChain {
            per_class(&r);
        }
    }
}

#[allow(dead_code)]
fn per_class(r: &SimResult) {
    use std::collections::BTreeMap;
    let mut by: BTreeMap<u64, Vec<f64>> = BTreeMap::new();
    let mut waste: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
    for p in r.compliant() {
        if let Some(c) = p.completion_s {
            by.entry(p.capacity_bps as u64).or_default().push(c);
        }
        let w = waste.entry(p.capacity_bps as u64).or_insert((0, 0));
        w.0 += p.bytes_received_raw;
        w.1 += p.bytes_received_usable;
    }
    for (cap, v) in by {
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        let (raw, usable) = waste[&cap];
        println!(
            "  cap={:>7} n={:>2} mean_ct={:>7.1} raw={:>9} usable={:>9} waste={:.2}",
            cap, v.len(), mean, raw, usable,
            1.0 - usable as f64 / raw.max(1) as f64
        );
    }
}
