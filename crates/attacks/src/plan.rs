//! Attack scenario composition.

use coop_incentives::MechanismKind;
use coop_swarm::{PeerSpec, PeerTags};
use rand::seq::SliceRandom;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::FreeRider;

/// The collusion ring id used for all colluding free-riders in a scenario.
const RING: u16 = 0;

/// Default whitewash interval in rounds (FairTorrent attack): long enough
/// to first exhaust the zero-deficit goodwill of the neighbors, short
/// enough to escape accumulated deficits repeatedly.
const WHITEWASH_INTERVAL: u64 = 10;

/// Default fictitious upload credit per colluder pair per round for the
/// reputation false-praise attack (bytes).
const FAKE_PRAISE_BYTES: u64 = 262_144;

/// A free-riding attack scenario: which fraction of the population
/// free-rides and with which capabilities.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AttackPlan {
    /// Fraction of peers converted to free-riders (the paper uses 20%),
    /// expressed in percent to keep the type `Eq`/hashable.
    pub freerider_percent: u8,
    /// T-Chain collusion: free-riders falsely confirm each other's
    /// reciprocations.
    pub collusion: bool,
    /// FairTorrent whitewashing: rejoin under fresh identities every this
    /// many rounds.
    pub whitewash_interval: Option<u64>,
    /// Reputation false praise: fictitious upload credit per colluder pair
    /// per round.
    pub fake_praise_bytes: u64,
    /// Large-view exploit: free-riders connect to the entire swarm.
    pub large_view: bool,
    /// Adaptive consensus defection: deny counterpart transfer reports,
    /// but only while the attacker's strike level stays below the ban
    /// threshold (threshold-aware free-riding).
    pub underreport: bool,
    /// Sybil report stuffing: ring members fabricate matched transfer
    /// reports toward quorum and file phantom claims against honest
    /// bystanders.
    pub stuff_reports: bool,
    /// Ban evasion: rotate to a fresh identity just before a strike
    /// level would trigger a permanent ban.
    pub ban_evade: bool,
}

/// One adaptive consensus-attack role, used to split a mixed plan's
/// free-riders round-robin.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum AdaptiveRole {
    Underreport,
    StuffReports,
    BanEvade,
}

impl AttackPlan {
    /// A plan with the given free-rider fraction and no extra capabilities
    /// (simple free-riding).
    pub fn simple(fraction: f64) -> Self {
        AttackPlan {
            freerider_percent: (fraction * 100.0).round() as u8,
            collusion: false,
            whitewash_interval: None,
            fake_praise_bytes: 0,
            large_view: false,
            underreport: false,
            stuff_reports: false,
            ban_evade: false,
        }
    }

    /// The paper's Fig. 5 setup: "free-riders use the most effective attack
    /// for each algorithm, i.e., simple, non-collusive free-riding for most
    /// algorithms, with additional collusion for T-Chain and whitewashing
    /// for FairTorrent".
    pub fn most_effective(kind: MechanismKind, fraction: f64) -> Self {
        let mut plan = AttackPlan::simple(fraction);
        match kind {
            MechanismKind::TChain => plan.collusion = true,
            MechanismKind::FairTorrent => plan.whitewash_interval = Some(WHITEWASH_INTERVAL),
            MechanismKind::ConsensusReputation => plan = AttackPlan::adaptive_mix(fraction),
            _ => {}
        }
        plan
    }

    /// Threshold-aware adaptive defectors (the consensus-reputation
    /// counterpart of simple free-riding): deny counterpart reports but
    /// keep the strike level just below the ban threshold.
    pub fn adaptive_defectors(fraction: f64) -> Self {
        let mut plan = AttackPlan::simple(fraction);
        plan.underreport = true;
        plan
    }

    /// A Sybil report-stuffing ring: colluding free-riders coordinate
    /// fabricated transfer reports toward quorum.
    pub fn sybil_ring(fraction: f64) -> Self {
        let mut plan = AttackPlan::simple(fraction);
        plan.collusion = true;
        plan.stuff_reports = true;
        plan
    }

    /// A ban-evading whitewash ring: free-riders rotate to fresh
    /// identities just before a ban would become permanent.
    pub fn ban_evading_ring(fraction: f64) -> Self {
        let mut plan = AttackPlan::simple(fraction);
        plan.ban_evade = true;
        plan
    }

    /// The combined adaptive attack: converted peers split round-robin
    /// across the three roles (defector, stuffer, evader), all sharing
    /// one collusion ring.
    pub fn adaptive_mix(fraction: f64) -> Self {
        let mut plan = AttackPlan::simple(fraction);
        plan.collusion = true;
        plan.underreport = true;
        plan.stuff_reports = true;
        plan.ban_evade = true;
        plan
    }

    /// The Fig. 6 setup: the Fig. 5 attack plus the large-view exploit.
    pub fn with_large_view(kind: MechanismKind, fraction: f64) -> Self {
        let mut plan = AttackPlan::most_effective(kind, fraction);
        plan.large_view = true;
        plan
    }

    /// An ablation beyond the paper's Fig. 5: reputation false praise (the
    /// collusion Table III rates as probability 1).
    pub fn false_praise(fraction: f64) -> Self {
        let mut plan = AttackPlan::simple(fraction);
        plan.collusion = true;
        plan.fake_praise_bytes = FAKE_PRAISE_BYTES;
        plan
    }

    /// The free-rider fraction as a float.
    pub fn fraction(&self) -> f64 {
        self.freerider_percent as f64 / 100.0
    }

    /// The tags free-riders under this plan carry.
    fn tags(&self) -> PeerTags {
        PeerTags {
            compliant: false,
            large_view: self.large_view,
            collusion_ring: if self.collusion { Some(RING) } else { None },
            whitewash_interval: self.whitewash_interval,
            fake_praise_bytes: self.fake_praise_bytes,
            underreport: self.underreport,
            stuff_reports: self.stuff_reports,
            ban_evade: self.ban_evade,
        }
    }

    /// The adaptive roles this plan enables, in declaration order.
    fn adaptive_roles(&self) -> Vec<AdaptiveRole> {
        let mut roles = Vec::new();
        if self.underreport {
            roles.push(AdaptiveRole::Underreport);
        }
        if self.stuff_reports {
            roles.push(AdaptiveRole::StuffReports);
        }
        if self.ban_evade {
            roles.push(AdaptiveRole::BanEvade);
        }
        roles
    }
}

/// Converts a uniformly random `fraction` of `population` into free-riders
/// with the plan's capabilities. Selection is deterministic in `seed`.
/// Returns the number of peers converted.
pub fn apply_attack(population: &mut [PeerSpec], plan: &AttackPlan, seed: u64) -> usize {
    let n = population.len();
    let count = (n as f64 * plan.fraction()).round() as usize;
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xA77AC4);
    order.shuffle(&mut rng);
    let roles = plan.adaptive_roles();
    for (j, &i) in order.iter().take(count).enumerate() {
        let spec = &mut population[i];
        let mimic = MechanismKind::ALL[i % MechanismKind::ALL.len()];
        // The mimicked kind is cosmetic; reuse the population's kind where
        // derivable is unnecessary since free-riders never allocate.
        spec.mechanism = Box::new(move || Box::new(FreeRider::new(mimic)));
        let mut tags = plan.tags();
        if roles.len() > 1 {
            // Mixed plans split the attackers round-robin: each converted
            // peer plays exactly one adaptive role, in conversion order
            // (deterministic in seed).
            tags.underreport = false;
            tags.stuff_reports = false;
            tags.ban_evade = false;
            match roles[j % roles.len()] {
                AdaptiveRole::Underreport => tags.underreport = true,
                AdaptiveRole::StuffReports => tags.stuff_reports = true,
                AdaptiveRole::BanEvade => tags.ban_evade = true,
            }
        }
        // Report stuffers fabricate toward ring mates; ring membership is
        // what makes them Sybils rather than loners.
        if tags.stuff_reports && tags.collusion_ring.is_none() {
            tags.collusion_ring = Some(RING);
        }
        spec.tags = tags;
    }
    count
}

/// Plugs attack plans into `Simulation::builder(..).attack_plan(..)`.
impl coop_swarm::PopulationPatch for AttackPlan {
    fn apply_patch(&self, population: &mut [PeerSpec], seed: u64) -> usize {
        apply_attack(population, self, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coop_swarm::{flash_crowd, SwarmConfig};

    fn population(n: usize, kind: MechanismKind) -> Vec<PeerSpec> {
        flash_crowd(&SwarmConfig::tiny_test(), n, kind, 5)
    }

    #[test]
    fn converts_requested_fraction() {
        let mut pop = population(50, MechanismKind::Altruism);
        let plan = AttackPlan::simple(0.2);
        let converted = apply_attack(&mut pop, &plan, 1);
        assert_eq!(converted, 10);
        assert_eq!(pop.iter().filter(|p| !p.tags.compliant).count(), 10);
    }

    #[test]
    fn most_effective_matches_paper() {
        let tc = AttackPlan::most_effective(MechanismKind::TChain, 0.2);
        assert!(tc.collusion);
        assert!(tc.whitewash_interval.is_none());
        let ft = AttackPlan::most_effective(MechanismKind::FairTorrent, 0.2);
        assert!(!ft.collusion);
        assert!(ft.whitewash_interval.is_some());
        for kind in [
            MechanismKind::Altruism,
            MechanismKind::BitTorrent,
            MechanismKind::Reputation,
            MechanismKind::Reciprocity,
        ] {
            let plan = AttackPlan::most_effective(kind, 0.2);
            assert_eq!(plan, AttackPlan::simple(0.2), "{kind}");
        }
    }

    #[test]
    fn large_view_adds_to_base_plan() {
        let plan = AttackPlan::with_large_view(MechanismKind::TChain, 0.2);
        assert!(plan.collusion);
        assert!(plan.large_view);
    }

    #[test]
    fn colluders_share_a_ring() {
        let mut pop = population(20, MechanismKind::TChain);
        apply_attack(&mut pop, &AttackPlan::most_effective(MechanismKind::TChain, 0.25), 2);
        let rings: Vec<Option<u16>> = pop
            .iter()
            .filter(|p| !p.tags.compliant)
            .map(|p| p.tags.collusion_ring)
            .collect();
        assert_eq!(rings.len(), 5);
        assert!(rings.iter().all(|r| *r == Some(RING)));
    }

    #[test]
    fn selection_is_deterministic_in_seed() {
        let pick = |seed| {
            let mut pop = population(30, MechanismKind::BitTorrent);
            apply_attack(&mut pop, &AttackPlan::simple(0.3), seed);
            pop.iter()
                .enumerate()
                .filter(|(_, p)| !p.tags.compliant)
                .map(|(i, _)| i)
                .collect::<Vec<_>>()
        };
        assert_eq!(pick(9), pick(9));
        assert_ne!(pick(9), pick(10));
    }

    #[test]
    fn zero_fraction_changes_nothing() {
        let mut pop = population(10, MechanismKind::Reputation);
        let converted = apply_attack(&mut pop, &AttackPlan::simple(0.0), 3);
        assert_eq!(converted, 0);
        assert!(pop.iter().all(|p| p.tags.compliant));
    }
}
