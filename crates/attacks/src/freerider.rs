//! The free-riding client.

use coop_incentives::{Grant, Mechanism, MechanismKind, SwarmView};
use rand::RngCore;

/// A client that participates in the swarm protocol but never uploads.
///
/// Free-riders receive bandwidth passively: other peers' mechanisms decide
/// whom to serve, and a free-rider simply stays connected and interested.
/// Against T-Chain its received pieces remain encrypted forever (unless a
/// colluding accomplice falsely confirms reciprocation — configured
/// through [`PeerTags`](coop_swarm::PeerTags), not here).
///
/// # Example
///
/// ```
/// use coop_attacks::FreeRider;
/// use coop_incentives::{Mechanism, MechanismKind};
/// let m = FreeRider::new(MechanismKind::BitTorrent);
/// assert_eq!(m.kind(), MechanismKind::BitTorrent);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct FreeRider {
    mimics: MechanismKind,
}

impl FreeRider {
    /// Creates a free-rider that presents itself as a client of the given
    /// protocol.
    pub fn new(mimics: MechanismKind) -> Self {
        FreeRider { mimics }
    }
}

impl Mechanism for FreeRider {
    fn clone_box(&self) -> Box<dyn Mechanism> {
        Box::new(*self)
    }

    fn kind(&self) -> MechanismKind {
        self.mimics
    }

    fn allocate(&mut self, _view: &dyn SwarmView, _budget: u64, _rng: &mut dyn RngCore) -> Vec<Grant> {
        Vec::new()
    }

    // Always returns nothing and touches nothing: the dirty-set round
    // loop can stop visiting a free-rider after its first grantless
    // round (it still receives — other peers' mechanisms decide that).
    fn allocate_is_memoryless(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_uploads() {
        // A minimal inline view double: the free-rider must return no
        // grants regardless of budget.
        struct NullView;
        impl SwarmView for NullView {
            fn me(&self) -> coop_incentives::PeerId {
                coop_incentives::PeerId::new(0)
            }
            fn round(&self) -> u64 {
                0
            }
            fn neighbors(&self) -> &[coop_incentives::PeerId] {
                const NEIGHBORS: [coop_incentives::PeerId; 1] = [coop_incentives::PeerId::new(1)];
                &NEIGHBORS
            }
            fn peer_needs_from_me(&self, _: coop_incentives::PeerId) -> bool {
                true
            }
            fn i_need_from(&self, _: coop_incentives::PeerId) -> bool {
                true
            }
            fn peer_needs_from(
                &self,
                _: coop_incentives::PeerId,
                _: coop_incentives::PeerId,
            ) -> bool {
                true
            }
            fn piece_count(&self, _: coop_incentives::PeerId) -> u32 {
                0
            }
            fn reputation(&self, _: coop_incentives::PeerId) -> f64 {
                0.0
            }
            fn ledger(&self) -> &coop_incentives::ledger::ContributionLedger {
                unreachable!("free-rider never consults the ledger")
            }
            fn deficits(&self) -> &coop_incentives::ledger::DeficitLedger {
                unreachable!("free-rider never consults deficits")
            }
            fn obligations(&self) -> &[coop_incentives::Obligation] {
                &[]
            }
            fn uploading_to(&self, _: coop_incentives::PeerId) -> bool {
                false
            }
            fn obligation_count(&self, _: coop_incentives::PeerId) -> usize {
                0
            }
            fn piece_size(&self) -> u64 {
                1000
            }
        }
        let mut fr = FreeRider::new(MechanismKind::TChain);
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        assert!(fr.allocate(&NullView, 1_000_000, &mut rng).is_empty());
    }

    #[test]
    fn mimics_reported_kind() {
        for kind in MechanismKind::ALL {
            assert_eq!(FreeRider::new(kind).kind(), kind);
        }
    }
}
