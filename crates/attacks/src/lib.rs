//! # coop-attacks
//!
//! Free-riding attack behaviors for the incentive-mechanism simulator
//! (Sections IV-C and V-B2 of the paper).
//!
//! The paper evaluates each algorithm against the attack that maximizes its
//! vulnerability:
//!
//! * **Simple free-riding** — request everything, upload nothing. Exploits
//!   any bandwidth given without a reciprocity requirement (altruism,
//!   BitTorrent's optimistic unchoking, the reputation algorithm's `α_R`
//!   share, FairTorrent's zero-deficit service).
//! * **Collusion** (T-Chain) — a free-rider's accomplice falsely confirms
//!   receipt of a forwarded piece, tricking the uploader into releasing
//!   the decryption key.
//! * **Whitewashing** (FairTorrent) — periodically rejoin under a fresh
//!   identity, resetting the positive deficits other peers hold against
//!   the free-rider.
//! * **False praise** (reputation) — colluders report fictitious uploads
//!   for each other, inflating reputations and attracting the
//!   reputation-weighted bandwidth share (offered as an ablation; the
//!   paper's Fig. 5 uses simple free-riding against reputation).
//! * **Large-view exploit** — connect to every peer in the swarm instead
//!   of a bounded neighbor set, multiplying exposure to altruistic and
//!   optimistic-unchoke bandwidth (Fig. 6 adds this to all attacks).
//!
//! The substrate features (identity churn, collusion rings, unbounded
//! neighbor sets) live in `coop-swarm`; this crate provides the free-rider
//! client behavior and composes populations for the paper's scenarios.
//!
//! # Example
//!
//! ```
//! use coop_attacks::AttackPlan;
//! use coop_incentives::MechanismKind;
//! use coop_swarm::{flash_crowd, Simulation, SwarmConfig};
//!
//! let config = SwarmConfig::tiny_test();
//! let population = flash_crowd(&config, 10, MechanismKind::Altruism, 3);
//! let plan = AttackPlan::most_effective(MechanismKind::Altruism, 0.2);
//! let result = Simulation::builder(config)
//!     .population(population)
//!     .attack_plan(plan)
//!     .build()
//!     .unwrap()
//!     .run();
//! assert!(result.final_susceptibility() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod freerider;
mod plan;

pub use freerider::FreeRider;
pub use plan::{apply_attack, AttackPlan};
