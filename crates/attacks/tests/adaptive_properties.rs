//! Property tests for the adaptive consensus attackers: invariants that
//! must hold for random seeds and defense policies.
//!
//! 1. Threshold-aware defectors are *never banned*: their denial budget
//!    reads the live strike level and stops one full strike short of the
//!    ban threshold, so no policy setting can push them over it.
//! 2. Ban-evading whitewash rings conserve the total identity count each
//!    round: every rotation departs one identity and spawns its successor
//!    in the same round, so the swarm's active population never dips or
//!    double-counts — proven against the per-round probe stream.

use coop_attacks::{apply_attack, AttackPlan};
use coop_incentives::MechanismKind;
use coop_piece::FileSpec;
use coop_swarm::{flash_crowd, Simulation, SwarmConfig};
use coop_telemetry::{Category, Recorder, Sampling, TelemetryConfig, TraceEvent};
use proptest::prelude::*;

fn consensus_config(
    seed: u64,
    pieces: u32,
    rounds: u64,
    quorum: usize,
    threshold: u32,
    decay: f64,
    temp_ban_rounds: u64,
) -> SwarmConfig {
    let mut c = SwarmConfig::tiny_test();
    c.seed = seed;
    c.file = FileSpec::new(u64::from(pieces) * 4096, 4096);
    c.max_rounds = rounds;
    c.mechanism_params.consensus_quorum = quorum;
    c.mechanism_params.consensus_ban_threshold = threshold;
    c.mechanism_params.consensus_decay = decay;
    c.mechanism_params.consensus_temp_ban_rounds = temp_ban_rounds;
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// A threshold-aware defector can never be banned, under any defense
    /// policy: its denial budget `floor(threshold - 1 - strikes)` caps the
    /// worst-case strike gain below the threshold even when every denial
    /// is charged to it.
    #[test]
    fn adaptive_defectors_never_reach_the_ban_threshold(
        seed in 0u64..500,
        quorum in 1usize..4,
        threshold in 2u32..8,
        decay in 0.5f64..0.99,
    ) {
        let config = consensus_config(seed, 12, 150, quorum, threshold, decay, 8);
        let mut population = flash_crowd(
            &config,
            12,
            MechanismKind::ConsensusReputation,
            seed,
        );
        let converted = apply_attack(
            &mut population,
            &AttackPlan::adaptive_defectors(0.25),
            seed,
        );
        prop_assert!(converted > 0);
        let r = Simulation::builder(config)
            .population(population)
            .build()
            .unwrap()
            .run();
        let summary = r.consensus.expect("consensus mechanism ran");
        // Friendly-fire bans of honest-but-uncorroborated uploaders are a
        // real (policy-dependent) cost; bans of the defectors themselves
        // must be impossible.
        prop_assert_eq!(
            summary.bans_noncompliant, 0,
            "a threshold-aware defector was banned (temp {} / perm {})",
            summary.bans_temp, summary.bans_perm
        );
        // Free-riders never upload regardless of the reporting layer.
        prop_assert_eq!(r.totals.uploaded_freeriders, 0);
    }

    /// Ban-evading rotations conserve the identity count: with every
    /// arrival pinned to t=0 and a file too large for anyone to complete,
    /// the active population reported by every round probe stays exactly
    /// the spawn count, however many identities the ring burns through.
    #[test]
    fn ban_evading_ring_conserves_identity_count_per_round(seed in 0u64..500) {
        // An aggressive defense (quorum 1, threshold 2, short temp bans)
        // so evaders cycle through the ban ladder — and rotate — quickly.
        let config = consensus_config(seed, 256, 120, 1, 2, 0.8, 2);
        let n = 12usize;
        let run = || {
            let mut population = flash_crowd(
                &config,
                n,
                MechanismKind::ConsensusReputation,
                seed,
            );
            for spec in &mut population {
                spec.arrival = coop_des::SimTime::ZERO;
            }
            apply_attack(&mut population, &AttackPlan::ban_evading_ring(0.3), seed);
            Simulation::builder(config.clone())
                .population(population)
                .recorder(Recorder::enabled(TelemetryConfig {
                    probe_every: 1,
                    ring_capacity: 4096,
                    sampling: Sampling::keep_all(),
                }))
                .build()
                .unwrap()
                .run_traced()
        };
        let (r, report) = run();
        // Guard: the conservation arithmetic below assumes no peer ever
        // departs by completing the (oversized) file.
        prop_assert!(
            r.peers.iter().all(|p| p.completion_s.is_none()),
            "a peer completed; enlarge the file"
        );
        let mut probes = 0u64;
        for ev in report.events_in(Category::Probe) {
            if let TraceEvent::RoundProbe { round, active, .. } = ev {
                probes += 1;
                prop_assert_eq!(
                    *active as usize, n,
                    "round {}: active identity count drifted from {}",
                    round, n
                );
            }
        }
        prop_assert!(probes > 0, "no round probes were recorded");
        // The ring must actually rotate for the conservation claim to
        // bite: burned identities show up as extra peer records.
        let summary = r.consensus.expect("consensus mechanism ran");
        prop_assert!(summary.bans_temp > 0, "no evader was ever temp-banned");
        prop_assert!(
            r.peers.len() > n,
            "no identity rotation happened ({} records)",
            r.peers.len()
        );
        // And the whole adaptive run is deterministic: same seed, same
        // byte-identical result.
        let (r2, _) = run();
        prop_assert_eq!(r, r2);
    }
}
