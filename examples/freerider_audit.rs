//! Free-rider audit: how much bandwidth do defectors extract from each
//! incentive mechanism when they use its most effective attack?
//!
//! Reproduces the Fig. 5 comparison at example scale: 20 % of the devices
//! free-ride — colluding against T-Chain, whitewashing against
//! FairTorrent, plain leeching elsewhere.
//!
//! ```text
//! cargo run --release --example freerider_audit
//! ```

use coop_attacks::AttackPlan;
use coop_incentives::MechanismKind;
use coop_swarm::{flash_crowd, Simulation, SwarmConfig};

fn main() {
    let mut config = SwarmConfig::scaled_default();
    config.file = coop_piece::FileSpec::new(4 * 1024 * 1024, 64 * 1024);
    config.seed = 99;

    println!("20% of 60 peers free-ride, each using the mechanism's worst attack.\n");
    println!(
        "{:<12} {:>10} {:>10} {:>14} {:>12} {:>24}",
        "mechanism", "susc.", "peak", "compliant ct", "fairness F", "attack"
    );
    let mut ranking: Vec<(MechanismKind, f64)> = Vec::new();
    for kind in MechanismKind::ALL {
        let plan = AttackPlan::most_effective(kind, 0.2);
        let attack_name = match kind {
            MechanismKind::TChain => "free-ride + collusion",
            MechanismKind::FairTorrent => "free-ride + whitewash",
            _ => "simple free-riding",
        };
        let population = flash_crowd(&config, 60, kind, config.seed);
        let result = Simulation::builder(config.clone())
            .population(population)
            .attack_plan(plan)
            .build()
            .expect("config is valid")
            .run();
        println!(
            "{:<12} {:>9.1}% {:>9.1}% {:>12.1}s {:>12.3} {:>24}",
            kind.name(),
            result.final_susceptibility() * 100.0,
            result.peak_susceptibility() * 100.0,
            result.mean_completion_time().unwrap_or(f64::NAN),
            result.final_fairness_stat(),
            attack_name,
        );
        ranking.push((kind, result.final_susceptibility()));
    }
    ranking.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
    println!(
        "\nMost robust → least robust: {}",
        ranking
            .iter()
            .map(|(k, _)| k.name())
            .collect::<Vec<_>>()
            .join(" > ")
    );
    println!(
        "The paper's conclusion holds: T-Chain (and degenerate reciprocity) \
         starve free-riders, altruism feeds them its entire capacity."
    );
}
