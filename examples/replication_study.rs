//! Replication study: run the compliant-swarm comparison (Fig. 4) over
//! several seeds and report mean ± standard deviation — the error bars the
//! paper's single-run figures imply.
//!
//! ```text
//! cargo run --release --example replication_study
//! ```

use coop_experiments::runners::fig4;
use coop_experiments::Scale;

fn main() {
    let seeds: Vec<u64> = (100..105).collect();
    println!(
        "Running the six-mechanism comparison over {} seeds at quick scale…\n",
        seeds.len()
    );
    let report = fig4::run_replicated(Scale::Quick, &seeds);
    println!("{}", report.render());
    println!(
        "Reading: dispersion across seeds is small relative to the gaps \
         between algorithms — the paper's orderings are stable, not \
         artifacts of one random draw."
    );
}
