//! A tour of the analytical API: the Fig. 1 classification, the Table I
//! equilibrium rates, the Table II bootstrap probabilities (including the
//! paper's example column) and the Table III attack surface — all without
//! running a simulation.
//!
//! ```text
//! cargo run --example design_space_tour
//! ```

use coop_incentives::analysis::bootstrap::{bootstrap_probability, BootstrapParams};
use coop_incentives::analysis::capacity::CapacityVector;
use coop_incentives::analysis::equilibrium::{equilibrium_summary, EquilibriumParams};
use coop_incentives::analysis::freeride::{exploitable_resources, FreeRideParams};
use coop_incentives::MechanismKind;

fn main() {
    println!("== Fig. 1: the classification ==");
    for kind in MechanismKind::ALL {
        let e = kind.expected();
        println!(
            "{:<12} combines {:?}: fairness {}, efficiency {}, bootstrap {}, free-ride resistance {}",
            kind.name(),
            kind.classes(),
            e.fairness,
            e.efficiency,
            e.bootstrapping,
            e.freeride_resistance
        );
    }

    // A toy population: three capacity classes.
    let caps = CapacityVector::new(vec![
        256.0, 256.0, 128.0, 128.0, 128.0, 64.0, 64.0, 64.0, 64.0, 64.0,
    ])
    .expect("positive capacities");
    assert!(caps.no_dominant_user(), "paper's capacity assumption");

    println!("\n== Table I / Fig. 2: idealized equilibrium (10 users, ΣU = {:.0}) ==", caps.total());
    let params = EquilibriumParams::default();
    for kind in MechanismKind::ALL {
        let s = equilibrium_summary(kind, &caps, &params);
        println!(
            "{:<12} F = {:<8} E = {}",
            kind.name(),
            if s.fairness.is_infinite() {
                "undef".to_string()
            } else {
                format!("{:.4}", s.fairness)
            },
            if s.efficiency.is_infinite() {
                "∞ (never finishes)".to_string()
            } else {
                format!("{:.5}", s.efficiency)
            }
        );
    }

    println!("\n== Table II: bootstrap probabilities at the paper's example parameters ==");
    let bp = BootstrapParams::paper_example();
    for kind in MechanismKind::ALL {
        println!(
            "{:<12} {:>6.1}%",
            kind.name(),
            bootstrap_probability(kind, &bp) * 100.0
        );
    }

    println!("\n== Table III: exploitable resources (fraction of ΣU) ==");
    let fr = FreeRideParams {
        total_capacity: caps.total(),
        ..FreeRideParams::default()
    };
    for kind in MechanismKind::ALL {
        println!(
            "{:<12} {:>5.1}%",
            kind.name(),
            exploitable_resources(kind, &fr) / caps.total() * 100.0
        );
    }
    println!(
        "\nReading the three tables together gives the paper's conclusion: \
         T-Chain matches reciprocity's zero attack surface while bootstrapping \
         almost as fast as altruism."
    );
}
