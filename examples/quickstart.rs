//! Quickstart: simulate a small swarm under one incentive mechanism and
//! print the headline metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use coop_incentives::MechanismKind;
use coop_swarm::{flash_crowd, Simulation, SwarmConfig};

fn main() {
    // A small swarm: 30 peers arrive in a 10-second flash crowd and
    // download a 2 MiB file from each other and one seeder.
    let mut config = SwarmConfig::scaled_default();
    config.file = coop_piece::FileSpec::new(2 * 1024 * 1024, 64 * 1024);
    config.seed = 7;

    let kind = MechanismKind::TChain;
    let population = flash_crowd(&config, 30, kind, config.seed);
    let result = Simulation::builder(config)
        .population(population)
        .build()
        .expect("config is valid")
        .run();

    println!("mechanism        : {kind}");
    println!("classes combined : {:?}", kind.classes());
    println!(
        "completed        : {:.0}% of peers",
        result.completed_fraction() * 100.0
    );
    println!(
        "mean download    : {:.1} s",
        result.mean_completion_time().unwrap_or(f64::NAN)
    );
    println!(
        "mean bootstrap   : {:.2} s (arrival → first piece)",
        result.mean_bootstrap_time().unwrap_or(f64::NAN)
    );
    println!(
        "avg fairness     : {:.3} (1.0 = every peer uploads exactly what it downloads)",
        result.final_avg_fairness().unwrap_or(f64::NAN)
    );
    println!(
        "fairness F       : {:.3} (0.0 = perfectly fair)",
        result.final_fairness_stat()
    );
    println!(
        "bytes moved      : {} up / {} usable down",
        result.totals.uploaded_total(),
        result
            .peers
            .iter()
            .map(|p| p.bytes_received_usable)
            .sum::<u64>()
    );
}
