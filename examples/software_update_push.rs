//! Software-update push: the paper's motivating scenario.
//!
//! A cloud server (the seeder) must disseminate an urgent update to a
//! fleet of devices that arrive in a flash crowd. Which incentive
//! mechanism gets every device bootstrapped and finished fastest, and what
//! does that cost in fairness?
//!
//! ```text
//! cargo run --release --example software_update_push
//! ```

use coop_incentives::MechanismKind;
use coop_swarm::{flash_crowd, SimResult, Simulation, SwarmConfig};

fn run(kind: MechanismKind, config: &SwarmConfig) -> SimResult {
    let population = flash_crowd(config, 60, kind, config.seed);
    Simulation::builder(config.clone())
        .population(population)
        .build()
        .expect("config is valid")
        .run()
}

fn main() {
    // The "update" is a 4 MiB payload; 60 devices arrive within 10 s.
    let mut config = SwarmConfig::scaled_default();
    config.file = coop_piece::FileSpec::new(4 * 1024 * 1024, 64 * 1024);
    config.seed = 2026;

    println!("Pushing a 4 MiB update to 60 devices through one seeder.\n");
    println!(
        "{:<12} {:>12} {:>14} {:>16} {:>12}",
        "mechanism", "finished", "mean boot (s)", "90% done by (s)", "fairness F"
    );
    let mut best: Option<(MechanismKind, f64)> = None;
    for kind in MechanismKind::ALL {
        let result = run(kind, &config);
        let done90 = result.completion_cdf().quantile(0.9);
        println!(
            "{:<12} {:>11.0}% {:>14.2} {:>16} {:>12.3}",
            kind.name(),
            result.completed_fraction() * 100.0,
            result.mean_bootstrap_time().unwrap_or(f64::NAN),
            done90.map_or("never".to_string(), |t| format!("{t:.0}")),
            result.final_fairness_stat(),
        );
        if let Some(t) = done90 {
            if best.is_none_or(|(_, bt)| t < bt) {
                best = Some((kind, t));
            }
        }
    }
    if let Some((kind, t)) = best {
        println!(
            "\nFastest 90th-percentile delivery: {kind} ({t:.0} s). \
             If devices may defect (free-ride), prefer T-Chain: it sacrifices a \
             little speed for near-zero exploitable bandwidth (see the \
             freerider_audit example)."
        );
    }
}
