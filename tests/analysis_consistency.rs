//! Cross-checks between the analytical model's components and against the
//! simulator: the paper's propositions must hold over randomized inputs,
//! and analytic predictions must agree with measured behavior in sign.

use coop_des::rng::SeedTree;
use coop_experiments::runners::{fig4, table2};
use coop_experiments::Scale;
use coop_incentives::analysis::bootstrap::{bootstrap_probability, BootstrapParams};
use coop_incentives::analysis::capacity::CapacityClassMix;
use coop_incentives::analysis::equilibrium::{
    download_rates, equilibrium_summary, optimal_download_rates, EquilibriumParams,
};
use coop_incentives::analysis::exchange::{pi_bt, pi_tc, q, PieceCountDistribution};
use coop_incentives::metrics::efficiency_from_rates;
use coop_incentives::MechanismKind;

#[test]
fn lemma1_no_algorithm_beats_the_optimum() {
    // Over many random capacity vectors, every algorithm's equilibrium
    // efficiency is at least the Lemma 1 optimum.
    let mix = CapacityClassMix::paper_default();
    for seed in 0..20 {
        let mut rng = SeedTree::new(seed).rng(1);
        let caps = mix.sample(30, &mut rng);
        let params = EquilibriumParams::default();
        let e_opt = efficiency_from_rates(&optimal_download_rates(&caps, 0.0));
        for kind in MechanismKind::EXTENDED {
            let s = equilibrium_summary(kind, &caps, &params);
            assert!(
                s.efficiency >= e_opt - 1e-9,
                "seed {seed} {kind}: E = {} < optimum {e_opt}",
                s.efficiency
            );
        }
    }
}

#[test]
fn eq1_conservation_in_the_analytic_model() {
    // Σ d_i = Σ u_i for every transferring algorithm in Table I.
    let mix = CapacityClassMix::paper_default();
    for seed in 0..10 {
        let mut rng = SeedTree::new(seed).rng(2);
        let caps = mix.sample(25, &mut rng);
        let params = EquilibriumParams::default();
        for kind in MechanismKind::EXTENDED {
            let d: f64 = download_rates(kind, &caps, &params).iter().sum();
            let u: f64 = match kind {
                MechanismKind::Reciprocity => 0.0,
                _ => caps.total(),
            };
            assert!(
                (d - u).abs() <= 1e-6 * u.max(1.0),
                "{kind} seed {seed}: Σd = {d}, Σu = {u}"
            );
        }
    }
}

#[test]
fn exchange_probabilities_are_probabilities_and_ordered() {
    let m = 48;
    let dist = PieceCountDistribution::uniform(m);
    for m_i in (0..=m).step_by(7) {
        for m_j in (0..=m).step_by(7) {
            let qv = q(m_i, m_j, m);
            assert!((0.0..=1.0).contains(&qv));
            let tc = pi_tc(m_i, m_j, m, &dist, 200);
            let bt = pi_bt(m_i, m_j, m, 0.2);
            assert!((0.0..=1.0).contains(&tc));
            assert!((0.0..=1.0).contains(&bt));
            // Corollary 2: altruism's q(i,j) dominates both.
            assert!(qv >= tc - 1e-12, "({m_i},{m_j})");
            assert!(qv >= bt - 1e-12, "({m_i},{m_j})");
        }
    }
}

#[test]
fn table2_probabilities_monotone_in_z_and_k() {
    let base = BootstrapParams::paper_example();
    for kind in [
        MechanismKind::TChain,
        MechanismKind::Altruism,
        MechanismKind::BitTorrent,
        MechanismKind::FairTorrent,
        MechanismKind::Reputation,
    ] {
        let mut lo = base;
        lo.z = 50;
        let mut hi = base;
        hi.z = 900;
        assert!(
            bootstrap_probability(kind, &hi) >= bootstrap_probability(kind, &lo),
            "{kind} monotone in z"
        );
    }
    // K helps the K-dependent algorithms.
    for kind in [MechanismKind::TChain, MechanismKind::Altruism] {
        let mut lo = base;
        lo.k = 1;
        let mut hi = base;
        hi.k = 10;
        assert!(
            bootstrap_probability(kind, &hi) > bootstrap_probability(kind, &lo),
            "{kind} monotone in K"
        );
    }
}

#[test]
fn analytic_bootstrap_ranking_predicts_simulated_ranking() {
    // Table II's analytic ranking (altruism fastest … reciprocity slowest)
    // must agree with the simulated mean bootstrap times on the extremes.
    let analytic = table2::run(Scale::Quick, 9);
    let simulated = fig4::run(Scale::Quick, 9);
    let a = |k: MechanismKind| analytic.get(k).expected_bootstrap_rounds;
    let s = |k: MechanismKind| simulated.get(k).mean_bootstrap_s.expect("bootstraps");
    // Analytic: altruism is fastest, reciprocity slowest.
    for kind in [
        MechanismKind::TChain,
        MechanismKind::BitTorrent,
        MechanismKind::FairTorrent,
        MechanismKind::Reputation,
        MechanismKind::Reciprocity,
    ] {
        assert!(a(MechanismKind::Altruism) <= a(kind) + 1e-9, "{kind}");
    }
    // Simulated agrees on both extremes.
    assert!(s(MechanismKind::Altruism) < s(MechanismKind::Reciprocity));
    assert!(s(MechanismKind::Reputation) < s(MechanismKind::Reciprocity));
    assert!(s(MechanismKind::Altruism) < s(MechanismKind::Reputation));
}

#[test]
fn epoch_open_fraction_predicts_simulated_susceptibility_ladder() {
    // The Table-I-style epoch row: the closed form's open-epoch fraction
    // λ(e) = e/(e+H) says how much of the epoch-settled mechanism's
    // capacity flows through the unprotected altruistic channel. Running
    // the fig-epoch cadence ladder under its fixed free-ride attack, the
    // simulated susceptibility must track λ: monotone along the ladder,
    // landing on the altruism baseline as λ → 1 (a cadence longer than
    // the run never settles), and well below it at λ ≈ 0.
    use coop_experiments::runners::fig_epoch;
    use coop_experiments::{Executor, OutputDir, TelemetryOpts};
    let dir = std::env::temp_dir().join(format!(
        "coop-epoch-ladder-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let (r, _) = fig_epoch::run_with_telemetry(
        Scale::Quick,
        17,
        Some(&[1, 16, 256]),
        &Executor::default(),
        &TelemetryOpts::disabled(),
        &OutputDir::new(&dir),
    );
    let lambda = |e: u64| r.epoch(e).predicted_open_fraction.expect("epoch rung carries λ");
    let s = |e: u64| r.epoch(e).susceptibility;
    assert!(
        lambda(1) < lambda(16) && lambda(16) < lambda(256),
        "λ must grow with the cadence"
    );
    // Simulated susceptibility follows the prediction at the ends of the
    // ladder. The middle is only loosely ordered: λ is a first-order
    // story, and at short cadences the spend granularity works against
    // it (one round's receipts make tiny balances, so most of the budget
    // still falls through to the altruistic channel), which can locally
    // invert the small-e ordering.
    assert!(s(16) <= s(256) + 0.02, "{} vs {}", s(16), s(256));
    assert!(s(1) < s(256), "the ladder endpoints must separate");
    let alt = r.baseline(MechanismKind::Altruism).susceptibility;
    assert!(
        (s(256) - alt).abs() < 0.02,
        "λ→1 rung must land on the altruism baseline ({} vs {alt})",
        s(256)
    );
    assert!(
        s(1) < alt * 0.85,
        "λ≈0 rung must claw back leakage vs altruism ({} vs {alt})",
        s(1)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fig2_predicts_fig4_fairness_extremes() {
    // The idealized model says T-Chain/FairTorrent are the fairest and
    // altruism the least fair; the simulation must agree.
    let sim = fig4::run(Scale::Quick, 13);
    let f = |k: MechanismKind| sim.get(k).fairness_f;
    assert!(f(MechanismKind::TChain) < f(MechanismKind::Altruism));
    assert!(f(MechanismKind::FairTorrent) < f(MechanismKind::Altruism));
}
