//! System-level invariants that must hold for every mechanism and attack:
//! byte conservation (Eq. 1), usable ≤ raw, susceptibility bounds, and
//! completion implying full receipt.

use coop_attacks::AttackPlan;
use coop_faults::FaultPlan;
use coop_incentives::MechanismKind;
use coop_swarm::{flash_crowd, SimResult, Simulation, SwarmConfig};
use coop_telemetry::{Recorder, TelemetryConfig};

fn run(kind: MechanismKind, plan: Option<AttackPlan>, seed: u64) -> (SimResult, SwarmConfig) {
    let mut config = SwarmConfig::tiny_test();
    config.seed = seed;
    let population = flash_crowd(&config, 16, kind, seed);
    let mut builder = Simulation::builder(config.clone()).population(population);
    if let Some(plan) = plan {
        builder = builder.attack_plan(plan);
    }
    (builder.build().unwrap().run(), config)
}

fn assert_invariants(r: &SimResult, config: &SwarmConfig, label: &str) {
    // Eq. (1): total upload equals total (raw) download — every byte sent
    // was received by exactly one peer; aborted partial bytes were
    // accounted on both sides when they moved. Under fault injection the
    // equation gains the in-transit drop term (see
    // [`bytes_conserved_under_faults_and_reconciled_with_telemetry`]);
    // `totals.fault_dropped_bytes` is zero in fault-free runs, so using
    // it here keeps one assertion serving both regimes.
    let sent: u64 = r.peers.iter().map(|p| p.bytes_sent).sum::<u64>() + r.totals.uploaded_seeder;
    let received: u64 = r.peers.iter().map(|p| p.bytes_received_raw).sum();
    assert_eq!(
        sent,
        received + r.totals.fault_dropped_bytes,
        "{label}: byte conservation"
    );
    assert_eq!(r.totals.uploaded_total(), sent, "{label}: totals agree");

    for p in &r.peers {
        assert!(
            p.bytes_received_usable <= p.bytes_received_raw,
            "{label}: usable ≤ raw for {:?}",
            p.id
        );
        if let Some(ct) = p.completion_s {
            assert!(ct >= 0.0);
            assert!(
                p.bytes_received_usable + p.bytes_inherited >= config.file.size_bytes(),
                "{label}: completed peer received (or inherited) a full file"
            );
            assert!(
                p.bootstrap_s.is_some(),
                "{label}: completion implies bootstrap"
            );
            assert!(
                p.bootstrap_s.unwrap() <= ct,
                "{label}: bootstrap before completion"
            );
        }
    }

    let susc = r.final_susceptibility();
    assert!((0.0..=1.0).contains(&susc), "{label}: susceptibility {susc}");
    assert!(
        r.totals.freerider_received_from_peers <= r.totals.freerider_received_usable,
        "{label}: peer-sourced ≤ total usable"
    );

    // Time series sanity: monotone nondecreasing cumulative fractions.
    for series in [&r.bootstrapped_frac, &r.completed_frac] {
        let pts = series.points();
        for w in pts.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-12, "{label}: fraction series monotone");
        }
        for &(_, v) in pts {
            assert!((0.0..=1.0 + 1e-12).contains(&v), "{label}: fraction in range");
        }
    }
}

#[test]
fn invariants_hold_without_attacks() {
    for kind in MechanismKind::EXTENDED {
        let (r, config) = run(kind, None, 3);
        assert_invariants(&r, &config, kind.name());
    }
}

#[test]
fn invariants_hold_under_worst_attacks() {
    for kind in MechanismKind::EXTENDED {
        let plan = AttackPlan::most_effective(kind, 0.25);
        let (r, config) = run(kind, Some(plan), 4);
        assert_invariants(&r, &config, kind.name());
    }
}

#[test]
fn invariants_hold_under_large_view_and_whitewash() {
    for kind in [MechanismKind::FairTorrent, MechanismKind::Altruism] {
        let mut plan = AttackPlan::with_large_view(kind, 0.25);
        plan.whitewash_interval = Some(7);
        let (r, config) = run(kind, Some(plan), 5);
        assert_invariants(&r, &config, kind.name());
        // Whitewashing spawned successor identities.
        assert!(r.peers.len() > 16, "{kind}: successors exist");
    }
}

#[test]
fn bytes_conserved_under_faults_and_reconciled_with_telemetry() {
    // Under fault injection, Eq. (1) gains one term: bytes the sender paid
    // for but a fault dropped in transit. Conservation then reads
    //   uploaded = received_raw + fault_dropped_bytes,
    // and the dropped total must agree exactly with the telemetry layer's
    // fault counters — two independent accountings of the same events.
    let plan = FaultPlan::churn(0.01).with_outages(0.5, 3).with_loss(0.2);
    for kind in [
        MechanismKind::Altruism,
        MechanismKind::BitTorrent,
        MechanismKind::TChain,
    ] {
        let mut config = SwarmConfig::tiny_test();
        config.seed = 12;
        let population = flash_crowd(&config, 16, kind, 12);
        let (r, report) = Simulation::builder(config)
            .population(population)
            .fault_plan(plan)
            .recorder(Recorder::enabled(TelemetryConfig::default()))
            .build()
            .unwrap()
            .run_traced();

        let sent: u64 =
            r.peers.iter().map(|p| p.bytes_sent).sum::<u64>() + r.totals.uploaded_seeder;
        let received: u64 = r.peers.iter().map(|p| p.bytes_received_raw).sum();
        assert_eq!(
            sent,
            received + r.totals.fault_dropped_bytes,
            "{kind}: conservation with the fault-drop term"
        );
        assert!(
            r.totals.fault_dropped_bytes > 0,
            "{kind}: a 20% loss rate drops something"
        );

        let counter = |name: &str| -> u64 {
            report
                .counters
                .iter()
                .find(|(n, _)| n == name)
                .map_or(0, |&(_, v)| v)
        };
        assert_eq!(
            counter("swarm.fault.dropped_bytes"),
            r.totals.fault_dropped_bytes,
            "{kind}: telemetry agrees with the totals ledger"
        );
        assert!(counter("swarm.fault.drops") > 0, "{kind}");
        assert!(counter("swarm.fault.departures") > 0, "{kind}: churn departed someone");
        assert!(
            counter("swarm.fault.events") >= counter("swarm.fault.departures"),
            "{kind}: every departure is a fault event"
        );
    }
}

#[test]
fn epoch_boundaries_conserve_bytes_under_faults() {
    // Epoch settlement only moves *reward balances*; bytes still settle
    // through the per-transfer entry point. So Eq. (1) with the
    // fault-drop term must hold exactly across epoch boundaries even
    // when contributors churn out or fall into outages mid-epoch — a
    // departed peer's unspent balance is forfeited, never paid twice,
    // and never manifests as phantom bytes. The settlement counters
    // prove boundaries actually fired inside the faulted run.
    let plan = FaultPlan::churn(0.01).with_outages(0.5, 3).with_loss(0.2);
    let mut config = SwarmConfig::tiny_test();
    config.seed = 12;
    config.mechanism_params.epoch_rounds = 4;
    let population = flash_crowd(&config, 16, MechanismKind::EpochSettlement, 12);
    let (r, report) = Simulation::builder(config.clone())
        .population(population)
        .fault_plan(plan)
        .recorder(Recorder::enabled(TelemetryConfig::default()))
        .build()
        .unwrap()
        .run_traced();

    let sent: u64 = r.peers.iter().map(|p| p.bytes_sent).sum::<u64>() + r.totals.uploaded_seeder;
    let received: u64 = r.peers.iter().map(|p| p.bytes_received_raw).sum();
    assert_eq!(
        sent,
        received + r.totals.fault_dropped_bytes,
        "conservation with the fault-drop term across epoch boundaries"
    );
    assert!(r.totals.fault_dropped_bytes > 0, "a 20% loss rate drops something");
    assert_invariants(&r, &config, "EpochSettlement+faults");

    let counter = |name: &str| -> u64 {
        report
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    };
    let settlements = counter("swarm.epoch.settlements");
    let boundaries = counter("swarm.epoch.boundaries");
    assert!(boundaries > 1, "several epoch boundaries inside the faulted run");
    assert!(
        settlements >= boundaries,
        "each boundary settles at least one peer ({settlements} < {boundaries})"
    );
    assert!(counter("swarm.fault.departures") > 0, "churn departed someone mid-epoch");
}

#[test]
fn epoch_settlement_sharded_boundary_pass_is_byte_identical() {
    // The sharded epoch hook pass only engages above `SHARD_MIN_ITEMS`
    // (256) active peers, so this cell runs a 300-peer swarm with a
    // short cadence (boundaries fire while the population is still
    // full) and a fault plan (departures inside epochs). Results must
    // be bit-identical for any shard count — sharding, like `--jobs`,
    // is a wall-clock lever, never a semantics lever.
    let build = |shards: usize| {
        let mut config = SwarmConfig::tiny_test();
        config.seed = 9;
        config.mechanism_params.epoch_rounds = 4;
        let population = flash_crowd(&config, 300, MechanismKind::EpochSettlement, 9);
        let mut builder = Simulation::builder(config)
            .population(population)
            .fault_plan(FaultPlan::churn(0.005).with_loss(0.1));
        if shards > 1 {
            builder = builder.shards(shards);
        }
        builder.build().unwrap().run()
    };
    let unsharded = build(1);
    let sharded = build(4);
    assert_eq!(
        unsharded, sharded,
        "shards=4 changed an epoch-settled result"
    );
}

#[test]
fn freeriders_upload_nothing() {
    for kind in MechanismKind::EXTENDED {
        let (r, _) = run(kind, Some(AttackPlan::simple(0.25)), 6);
        for p in r.freeriders() {
            assert_eq!(p.bytes_sent, 0, "{kind}: free-riders never upload");
        }
        assert_eq!(r.totals.uploaded_freeriders, 0, "{kind}");
    }
}
