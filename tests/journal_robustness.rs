//! Property-based tests for the crash-safety ledger: any journal the
//! writer can produce must replay bit-exactly, and a journal truncated at
//! *any* byte offset — the on-disk state a crash can leave — must still
//! load, replaying only fully-durable records and re-running the rest.

use std::path::PathBuf;

use coop_experiments::journal::{JobOutcome, JobRecord, JournalReplay, RunHeader, RunJournal};
use coop_incentives::PeerId;
use coop_swarm::{PeerRecord, SimResult};
use proptest::prelude::*;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "coop-journal-prop-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A synthetic result whose fields exercise the encoder's edge cases:
/// large (but in-contract, < 2^53) u64 counters, non-exact decimals,
/// optional times. Seeds and fingerprints go beyond 2^53 — those travel
/// as hex strings in the ledger.
fn sample_result(bits: u64, x: f64) -> SimResult {
    let mut r = SimResult {
        rounds_run: bits % 1_000,
        sim_seconds: x,
        stalled: bits & 1 == 0,
        ..SimResult::default()
    };
    r.peers.push(PeerRecord {
        id: PeerId::new((bits % 64) as u32),
        capacity_bps: x * 3.0 + 1.0,
        compliant: bits & 2 == 0,
        arrival_s: x / 7.0,
        bootstrap_s: (bits & 4 == 0).then_some(x / 3.0),
        completion_s: (bits & 8 == 0).then_some(x + 1.0),
        bytes_sent: bits,
        bytes_received_usable: bits >> 3,
        bytes_received_raw: bits >> 2,
        bytes_inherited: bits >> 5,
    });
    r.totals.uploaded_compliant = bits ^ 0xFF;
    r.totals.bytes_by_reason[(bits % 5) as usize] = bits >> 7;
    r.fairness_avg.push(x, x * 0.5 + 0.1);
    r.susceptibility.push(x + 2.0, f64::MIN_POSITIVE);
    r
}

fn record(fingerprint: u64, slot: u64, bits: u64, x: f64) -> JobRecord {
    JobRecord {
        fingerprint,
        slot,
        label: format!("Mech-{}", bits % 7),
        seed: bits.rotate_left(13),
        outcome: JobOutcome::Ok,
        attempts: 1 + bits % 3,
        result: Some(sample_result(bits, x)),
        error: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Whatever the writer records, `load` replays bit-exactly: the
    /// header round-trips, every fingerprint is completed, and each
    /// replayed `SimResult` equals the recorded one (f64s included).
    #[test]
    fn journal_round_trips_bit_exactly(
        base_fp in proptest::strategy::any::<u64>(),
        seed in proptest::strategy::any::<u64>(),
        replicates in 1u64..16,
        cells in proptest::collection::vec(
            (0u64..(1u64 << 50), 0.0f64..1e12),
            1..8,
        ),
    ) {
        let dir = tmp_dir("roundtrip");
        let header = RunHeader {
            artifact: "fig4".to_string(),
            scale: "quick".to_string(),
            seed,
            replicates,
        };
        let journal = RunJournal::create(&dir, &header).expect("create");
        let records: Vec<JobRecord> = cells
            .iter()
            .enumerate()
            // Distinct fingerprints: replay is keyed by fingerprint, and
            // a real grid never repeats a configuration.
            .map(|(i, &(bits, x))| record(base_fp.wrapping_add(i as u64), i as u64, bits, x))
            .collect();
        for r in &records {
            journal.record_job(r).expect("record");
        }

        let replay = JournalReplay::load(&dir).expect("load");
        prop_assert_eq!(&replay.header, &Some(header));
        prop_assert_eq!(replay.dropped_lines, 0);
        prop_assert_eq!(replay.completed_count(), records.len());
        for r in &records {
            prop_assert_eq!(replay.completed(r.fingerprint), r.result.as_ref());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Chopping the journal at an arbitrary byte offset — the state a
    /// crash mid-append leaves behind — never poisons replay: loading
    /// still succeeds, at most the torn line is dropped, and every record
    /// that does replay is bit-exact. The torn job simply re-runs.
    #[test]
    fn journal_truncated_anywhere_still_replays_the_durable_prefix(
        cells in proptest::collection::vec(
            (0u64..(1u64 << 50), 0.0f64..1e9),
            1..5,
        ),
        cut_per_mille in 0u64..=1000,
    ) {
        let dir = tmp_dir("truncate");
        let header = RunHeader {
            artifact: "fig5".to_string(),
            scale: "quick".to_string(),
            seed: 9,
            replicates: 1,
        };
        let journal = RunJournal::create(&dir, &header).expect("create");
        let records: Vec<JobRecord> = cells
            .iter()
            .enumerate()
            .map(|(i, &(bits, x))| record(1 + i as u64, i as u64, bits, x))
            .collect();
        for r in &records {
            journal.record_job(r).expect("record");
        }
        drop(journal);

        let path = RunJournal::path_in(&dir);
        let text = std::fs::read(&path).expect("read journal");
        let cut = (text.len() as u64 * cut_per_mille / 1000) as usize;
        std::fs::write(&path, &text[..cut]).expect("truncate journal");

        let replay = JournalReplay::load(&dir).expect("truncated journal loads");
        // A cut hits at most one line, so at most one record is lost.
        prop_assert!(replay.dropped_lines <= 1);
        prop_assert!(replay.completed_count() <= records.len());
        let mut replayed = 0;
        for r in &records {
            if let Some(result) = replay.completed(r.fingerprint) {
                prop_assert_eq!(Some(result), r.result.as_ref());
                replayed += 1;
            }
        }
        prop_assert_eq!(replayed, replay.completed_count());
        // Everything before the cut is durable: exactly the fully-written
        // job lines replay (the first surviving line is the header).
        let whole_lines = text[..cut].iter().filter(|&&b| b == b'\n').count();
        let surviving_jobs = whole_lines.saturating_sub(1).min(records.len());
        prop_assert_eq!(replay.completed_count(), surviving_jobs);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
