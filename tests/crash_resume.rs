//! The crash-safety contract, end to end: a panicking job never aborts
//! its batch, retries recover injected flakes without changing a single
//! byte, the watchdog converts hangs into named failures, checkpointing
//! is observationally free, and a killed run resumed from its journal
//! produces artifacts byte-identical to an uninterrupted run — even when
//! the crash tore the journal's trailing line.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use coop_experiments::journal::RunHeader;
use coop_experiments::{
    runners, Executor, FailureKind, JournalReplay, OutputDir, PanicInject, RunJournal, Scale,
    SimJob, TelemetryOpts,
};
use coop_telemetry::json::{self, Json};

/// A fresh scratch directory under `target/` for this test run.
fn scratch(tag: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR"))
        .join("crash_resume")
        .join(tag);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Every artifact in `dir` (file name → bytes), excluding the ledger
/// itself and telemetry-only outputs.
fn artifact_bytes(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut files = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("read artifact dir") {
        let path = entry.expect("dir entry").path();
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .expect("utf-8 file name")
            .to_string();
        if name == "journal.jsonl" || name == "failures.json" || name == "manifest.json" {
            continue;
        }
        files.insert(name, std::fs::read(&path).expect("read artifact"));
    }
    files
}

/// Parsed `type == "job"` journal lines.
fn journal_job_lines(dir: &Path) -> Vec<Json> {
    let text = std::fs::read_to_string(RunJournal::path_in(dir)).expect("read journal");
    text.lines()
        .filter_map(|line| json::parse(line).ok())
        .filter(|doc| doc.get("type").and_then(Json::as_str) == Some("job"))
        .collect()
}

fn inject(label: &str, seed: u64, fail_attempts: Option<u64>) -> Option<PanicInject> {
    Some(PanicInject {
        label: label.to_string(),
        seed: Some(seed),
        fail_attempts,
    })
}

#[test]
fn panicking_job_is_isolated_and_precisely_named() {
    let seed = 57;
    let jobs = SimJob::grid(Scale::Quick, &[seed], |_| None);
    let executor = Executor::new(2).with_panic_inject(inject("BitTorrent", seed, None));
    let run = executor.run_sims_robust(&jobs, &TelemetryOpts::disabled());

    // Exactly the injected cell failed; every other job still completed.
    assert_eq!(run.failures.len(), 1);
    let failure = &run.failures[0];
    assert_eq!(failure.mechanism, "BitTorrent");
    assert_eq!(failure.seed, seed);
    assert_eq!(failure.peers, Scale::Quick.peers());
    assert_eq!(failure.attempts, 1, "no retries configured");
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(failure.backoff_ms.is_empty(), "no retries, no backoff");
    assert!(failure.message.contains("injected panic"));
    assert_eq!(
        run.results.iter().filter(|r| r.is_some()).count(),
        jobs.len() - 1
    );
    assert!(run.results[failure.slot].is_none(), "failure names its slot");

    // The batch error renders an operator-actionable summary.
    let err = run.into_complete("fig4").unwrap_err();
    assert_eq!(err.figure, "fig4");
    assert_eq!(err.total, jobs.len());
    let text = err.to_string();
    assert!(text.contains("BitTorrent") && text.contains("N=80"), "{text}");
}

#[test]
fn retries_recover_flakes_without_changing_results() {
    let seed = 58;
    let jobs = SimJob::grid(Scale::Quick, &[seed], |_| None);
    let clean = Executor::new(2).run_sims(&jobs);

    // The T-Chain job panics on its first attempt only; one retry heals it.
    let flaky = Executor::new(2)
        .with_retries(2)
        .with_panic_inject(inject("T-Chain", seed, Some(1)));
    let opts = TelemetryOpts {
        enabled: true,
        trace_out: None,
        probe_every: 4,
        ..TelemetryOpts::disabled()
    };
    let run = flaky.run_sims_robust(&jobs, &opts);
    assert!(run.failures.is_empty(), "{:?}", run.failures);
    let trace = run.trace.as_ref().expect("telemetry gathers a trace");
    for span in &trace.jobs {
        let expected = u64::from(span.label == "T-Chain");
        assert_eq!(span.retries, expected, "{}", span.label);
    }
    let (results, _) = run.into_complete("fig4").unwrap();
    assert_eq!(results, clean, "a retried job must reproduce bit-exactly");
}

#[test]
fn watchdog_converts_hangs_into_timeout_failures() {
    let seed = 59;
    let jobs = SimJob::grid(Scale::Quick, &[seed], |_| None);
    // 1 ms is far below any quick-scale run; the watchdog must fire. The
    // abandoned worker thread finishes (and is discarded) in the background.
    let executor = Executor::sequential().with_job_timeout(Duration::from_millis(1));
    let run = executor.run_sims_robust(&jobs[..1], &TelemetryOpts::disabled());
    assert_eq!(run.failures.len(), 1);
    assert_eq!(run.failures[0].kind, FailureKind::Timeout);
    assert!(run.failures[0].message.contains("watchdog"));
    assert!(run.results[0].is_none());
}

#[test]
fn checkpointing_cadence_is_observationally_free() {
    let seed = 60;
    let jobs = SimJob::grid(Scale::Quick, &[seed], |_| None);
    let plain = Executor::new(2).run_sims(&jobs);
    let run = Executor::new(2)
        .with_checkpoint_every(7)
        .run_sims_robust(&jobs, &TelemetryOpts::disabled());
    let (checkpointed, _) = run.into_complete("fig4").unwrap();
    assert_eq!(plain, checkpointed);
}

#[test]
fn killed_run_resumes_to_byte_identical_artifacts() {
    let seed = 71;
    let header = RunHeader {
        artifact: "fig4".to_string(),
        scale: "quick".to_string(),
        seed,
        replicates: 1,
    };
    let jobs = SimJob::grid(Scale::Quick, &[seed], |_| None);
    let tchain_fp = jobs
        .iter()
        .find(|j| j.label() == "T-Chain")
        .expect("grid covers T-Chain")
        .fingerprint();

    // Reference: one uninterrupted, journal-free run.
    let dir_ref = scratch("reference");
    runners::fig4::run_with_telemetry(
        Scale::Quick,
        seed,
        &Executor::new(2),
        &TelemetryOpts::disabled(),
        &OutputDir::new(&dir_ref),
    );
    let reference = artifact_bytes(&dir_ref);
    assert!(reference.len() >= 40, "fig4 writes CSV/JSON/SVG artifacts");

    // "Crash": the T-Chain job dies on every attempt, so the batch fails
    // after journaling the five healthy cells — and writes no artifacts.
    let dir = scratch("resumed");
    let journal = Arc::new(RunJournal::create(&dir, &header).expect("create journal"));
    let broken = Executor::new(2)
        .with_journal(Arc::clone(&journal))
        .with_panic_inject(inject("T-Chain", seed, None));
    let err = runners::fig4::try_run_with_telemetry(
        Scale::Quick,
        seed,
        &broken,
        &TelemetryOpts::disabled(),
        &OutputDir::new(&dir),
    )
    .unwrap_err();
    assert_eq!(err.figure, "fig4");
    assert_eq!(err.failures.len(), 1);
    assert!(
        artifact_bytes(&dir).is_empty(),
        "a failed batch must not write partial figure artifacts"
    );
    let lines = journal_job_lines(&dir);
    assert_eq!(lines.len(), jobs.len(), "every job journaled, even the failure");
    drop(broken);
    drop(journal);

    // Resume: the five completed jobs replay from the ledger, only the
    // (now healthy) T-Chain cell re-runs.
    let replay = JournalReplay::load(&dir).expect("load journal");
    assert_eq!(replay.header, Some(header.clone()));
    assert_eq!(replay.completed_count(), jobs.len() - 1);
    assert_eq!(replay.prior_attempts(tchain_fp), 1);
    let journal = Arc::new(RunJournal::open_append(&dir).expect("append journal"));
    let resumed = Executor::new(2)
        .with_replay(Arc::new(replay))
        .with_journal(Arc::clone(&journal));
    let (report, _) = runners::fig4::try_run_with_telemetry(
        Scale::Quick,
        seed,
        &resumed,
        &TelemetryOpts::disabled(),
        &OutputDir::new(&dir),
    )
    .expect("resume completes");
    assert_eq!(report.rows.len(), jobs.len());
    drop(resumed);
    drop(journal);

    // The flagship guarantee: resumed artifacts are byte-identical.
    assert_eq!(artifact_bytes(&dir), reference, "resume must be byte-exact");
    // Only the failed cell re-ran: original 6 records + 1 new success.
    assert_eq!(journal_job_lines(&dir).len(), jobs.len() + 1);

    // A torn trailing line (the classic power-cut artifact) drops exactly
    // that record; the affected job re-runs and byte-identity still holds.
    let path = RunJournal::path_in(&dir);
    let text = std::fs::read_to_string(&path).expect("read journal");
    std::fs::write(&path, &text[..text.len() - 40]).expect("tear journal");
    let replay = JournalReplay::load(&dir).expect("torn journal still loads");
    assert_eq!(replay.dropped_lines, 1);
    assert_eq!(replay.completed_count(), jobs.len() - 1, "torn job re-runs");
    let journal = Arc::new(RunJournal::open_append(&dir).expect("append journal"));
    let healed = Executor::new(2)
        .with_replay(Arc::new(replay))
        .with_journal(journal);
    runners::fig4::try_run_with_telemetry(
        Scale::Quick,
        seed,
        &healed,
        &TelemetryOpts::disabled(),
        &OutputDir::new(&dir),
    )
    .expect("resume after torn line completes");
    assert_eq!(artifact_bytes(&dir), reference, "post-tear resume byte-exact");
}
