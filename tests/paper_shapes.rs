//! End-to-end qualitative checks: the simulated system must reproduce the
//! paper's headline orderings (who wins, by roughly what factor) at quick
//! scale.

use coop_attacks::AttackPlan;
use coop_experiments::runners::{fig4, fig5, fig6, table2};
use coop_experiments::{Scale, SimJob};
use coop_faults::FaultPlan;
use coop_incentives::MechanismKind;
use coop_swarm::SimResult;

const SEED: u64 = 20260706;

/// A mild per-round departure hazard: mean lifetime 200 rounds, long
/// against quick-scale completion times, so most peers finish before they
/// churn out.
const MILD_CHURN: f64 = 0.005;

/// One quick-scale run of `kind` under mild churn (and optionally an
/// attack plan).
fn churned(kind: MechanismKind, plan: Option<AttackPlan>, faults: FaultPlan) -> SimResult {
    SimJob {
        kind,
        scale: Scale::Quick,
        seed: SEED,
        plan,
        faults: Some(faults),
        workload: None,
    }
    .run()
}

#[test]
fn fig4a_altruism_most_efficient_reciprocity_never_finishes() {
    let r = fig4::run(Scale::Quick, SEED);
    let alt = r.get(MechanismKind::Altruism);
    assert!(alt.completed_fraction > 0.95);
    assert_eq!(r.get(MechanismKind::Reciprocity).completed_fraction, 0.0);
    let alt_ct = alt.mean_completion_s.expect("altruism completes");
    for kind in [
        MechanismKind::TChain,
        MechanismKind::BitTorrent,
        MechanismKind::FairTorrent,
        MechanismKind::Reputation,
    ] {
        let ct = r.get(kind).mean_completion_s.expect("completes");
        assert!(
            ct >= alt_ct * 0.8,
            "{kind}: altruism should be fastest ({ct:.1} vs {alt_ct:.1})"
        );
    }
}

#[test]
fn fig4a_hybrids_show_comparable_efficiency() {
    // "T-Chain, BitTorrent, and FairTorrent show comparable efficiency."
    let r = fig4::run(Scale::Quick, SEED);
    let cts: Vec<f64> = [
        MechanismKind::TChain,
        MechanismKind::BitTorrent,
        MechanismKind::FairTorrent,
    ]
    .iter()
    .map(|&k| r.get(k).mean_completion_s.expect("completes"))
    .collect();
    let max = cts.iter().cloned().fold(f64::MIN, f64::max);
    let min = cts.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        max / min < 4.0,
        "hybrid completion times within a small factor: {cts:?}"
    );
}

#[test]
fn fig4b_tchain_and_fairtorrent_most_fair() {
    let r = fig4::run(Scale::Quick, SEED);
    let f = |k: MechanismKind| r.get(k).fairness_f;
    for fair in [MechanismKind::TChain, MechanismKind::FairTorrent] {
        assert!(
            f(fair) < f(MechanismKind::Altruism),
            "{fair} must beat altruism on fairness"
        );
        assert!(
            f(fair) < f(MechanismKind::Reputation),
            "{fair} must beat reputation on fairness"
        );
    }
    // And their u/d ratios approach 1.
    for fair in [MechanismKind::TChain, MechanismKind::FairTorrent] {
        let avg = r.get(fair).avg_fairness.expect("peers downloaded");
        assert!((avg - 1.0).abs() < 0.35, "{fair}: avg fairness {avg}");
    }
}

#[test]
fn fig4c_bootstrap_ordering() {
    // Altruism fastest; reputation and reciprocity the laggards
    // (Prop. 4 / Table II).
    let r = fig4::run(Scale::Quick, SEED);
    let b = |k: MechanismKind| r.get(k).mean_bootstrap_s.expect("bootstraps");
    assert!(b(MechanismKind::Altruism) < b(MechanismKind::Reputation));
    assert!(b(MechanismKind::TChain) < b(MechanismKind::Reputation));
    assert!(b(MechanismKind::FairTorrent) < b(MechanismKind::Reputation));
    assert!(b(MechanismKind::Reputation) < b(MechanismKind::Reciprocity));
}

#[test]
fn fig5a_susceptibility_ranking() {
    let r = fig5::run(Scale::Quick, SEED);
    let s = |k: MechanismKind| r.get(k).susceptibility;
    assert_eq!(s(MechanismKind::Reciprocity), 0.0);
    assert!(s(MechanismKind::TChain) < 0.05, "{}", s(MechanismKind::TChain));
    for leaky in [
        MechanismKind::Altruism,
        MechanismKind::BitTorrent,
        MechanismKind::FairTorrent,
        MechanismKind::Reputation,
    ] {
        assert!(
            s(leaky) > s(MechanismKind::TChain),
            "{leaky} leaks more than T-Chain"
        );
    }
    assert!(
        s(MechanismKind::Altruism) >= s(MechanismKind::BitTorrent),
        "altruism is the most susceptible"
    );
}

#[test]
fn fig5_tchain_keeps_efficiency_and_fairness_under_attack() {
    let clean = fig4::run(Scale::Quick, SEED);
    let attacked = fig5::run(Scale::Quick, SEED);
    let tc_clean = clean.get(MechanismKind::TChain);
    let tc_attacked = attacked.get(MechanismKind::TChain);
    assert!(tc_attacked.completed_fraction > 0.9);
    let ct_clean = tc_clean.mean_completion_s.unwrap();
    let ct_attacked = tc_attacked.mean_completion_s.unwrap();
    // Less compliant capacity (20% defected) slows things, but not
    // catastrophically: free-riders get starved, not fed.
    assert!(
        ct_attacked < ct_clean * 2.5,
        "{ct_attacked:.1} vs clean {ct_clean:.1}"
    );
}

#[test]
fn fig6_large_view_amplifies_leakage_but_not_for_tchain() {
    let base = fig5::run(Scale::Quick, SEED);
    let lv = fig6::run(Scale::Quick, SEED);
    // T-Chain stays near-immune.
    assert!(lv.get(MechanismKind::TChain).susceptibility < 0.06);
    // At least two susceptible algorithms leak visibly more overall
    // (altruism is usually saturated — free-riders already extract a full
    // file's worth either way).
    let mut amplified = 0;
    for kind in [
        MechanismKind::Altruism,
        MechanismKind::BitTorrent,
        MechanismKind::FairTorrent,
        MechanismKind::Reputation,
    ] {
        if lv.get(kind).susceptibility > base.get(kind).susceptibility * 1.1 {
            amplified += 1;
        }
    }
    assert!(amplified >= 2, "only {amplified} algorithms amplified");
}

#[test]
fn fig4b_fairness_ordering_survives_mild_churn() {
    // The paper's fairness ranking (FairTorrent at least as fair as
    // BitTorrent) is a structural property of the mechanisms, not of a
    // static population — mild churn must not invert it.
    let plan = FaultPlan::churn(MILD_CHURN);
    let ft = churned(MechanismKind::FairTorrent, None, plan);
    let bt = churned(MechanismKind::BitTorrent, None, plan);
    assert!(
        ft.completed_fraction() > 0.5 && bt.completed_fraction() > 0.5,
        "mild churn leaves most peers completing: ft {} bt {}",
        ft.completed_fraction(),
        bt.completed_fraction()
    );
    assert!(!ft.stalled && !bt.stalled);
    assert!(
        ft.final_fairness_stat() <= bt.final_fairness_stat() + 0.05,
        "FairTorrent stays at least as fair as BitTorrent under churn: {} vs {}",
        ft.final_fairness_stat(),
        bt.final_fairness_stat()
    );
}

#[test]
fn fig5_altruism_efficiency_unaffected_by_freeriders_under_churn() {
    // Altruism serves everyone unconditionally, so free-riders slow the
    // compliant crowd only by their withheld capacity — churn on top of
    // the attack must not change that qualitative story.
    let plan = FaultPlan::churn(MILD_CHURN);
    let clean = churned(MechanismKind::Altruism, None, plan);
    let attacked = churned(MechanismKind::Altruism, Some(AttackPlan::simple(0.2)), plan);
    let ct_clean = clean.mean_completion_time().expect("altruism completes");
    let ct_attacked = attacked.mean_completion_time().expect("still completes");
    assert!(
        attacked.completed_fraction() > 0.5,
        "compliant peers still finish: {}",
        attacked.completed_fraction()
    );
    assert!(
        ct_attacked < ct_clean * 2.0,
        "free-riders must not wreck altruism under churn: {ct_attacked:.1} vs {ct_clean:.1}"
    );
}

#[test]
fn zero_rate_fault_plan_is_byte_identical_to_no_plan() {
    // A plan whose every rate is zero compiles to the empty schedule, and
    // the empty schedule is the identity: every recorded number matches
    // the plan-free run bit for bit (the swarm crate additionally pins
    // this against its golden fingerprints).
    for kind in [MechanismKind::FairTorrent, MechanismKind::Altruism] {
        let with = churned(kind, None, FaultPlan::none());
        let without = SimJob {
            kind,
            scale: Scale::Quick,
            seed: SEED,
            plan: None,
            faults: None,
            workload: None,
        }
        .run();
        assert_eq!(with, without, "{kind}: FaultPlan::none() must be the identity");
    }
}

/// One quick-scale EpochSettlement run at an explicit settlement cadence
/// (the limit axis), optionally under an attack plan. The population and
/// every other knob match [`SimJob`]'s defaults, so the baselines below
/// are apples-to-apples.
fn epoch_run(epoch_rounds: u64, plan: Option<AttackPlan>) -> SimResult {
    use coop_incentives::analysis::capacity::CapacityClassMix;
    let mut config = Scale::Quick.config(SEED);
    config.mechanism_params.epoch_rounds = epoch_rounds;
    let population = coop_swarm::flash_crowd_with(
        &config,
        Scale::Quick.peers(),
        MechanismKind::EpochSettlement,
        SEED,
        &CapacityClassMix::paper_default(),
        Scale::Quick.arrival_window(),
    );
    let mut builder = coop_swarm::Simulation::builder(config).population(population);
    if let Some(plan) = plan {
        builder = builder.attack_plan(plan);
    }
    builder.build().expect("quick config validates").run()
}

fn baseline(kind: MechanismKind, plan: Option<AttackPlan>) -> SimResult {
    SimJob {
        kind,
        scale: Scale::Quick,
        seed: SEED,
        plan,
        faults: None,
        workload: None,
    }
    .run()
}

#[test]
fn epoch_limit_short_cadence_is_fairtorrent_shaped() {
    // The epoch→0 limit: settling every round makes each contribution
    // spendable almost immediately, so the fairness profile must land on
    // the FairTorrent side of the spectrum — far from altruism — and
    // tightening the cadence from the default must not cost fairness.
    let every_round = epoch_run(1, None);
    let coarse = epoch_run(64, None);
    let fairtorrent = baseline(MechanismKind::FairTorrent, None);
    let altruism = baseline(MechanismKind::Altruism, None);
    assert!(every_round.completed_fraction() > 0.95);
    assert!(
        every_round.final_fairness_stat() < altruism.final_fairness_stat(),
        "per-round settlement must beat altruism on fairness"
    );
    assert!(
        every_round.final_fairness_stat() <= coarse.final_fairness_stat(),
        "tightening the cadence must not worsen fairness"
    );
    // Measured at SEED: epoch1 0.390 vs FairTorrent 0.376 — the one-round
    // settlement lag plus the altruistic bootstrap channel cost ~4%.
    assert!(
        every_round.final_fairness_stat() < fairtorrent.final_fairness_stat() * 1.15,
        "epoch=1 fairness must sit within a small factor of FairTorrent's \
         ({:.4} vs {:.4})",
        every_round.final_fairness_stat(),
        fairtorrent.final_fairness_stat()
    );
    // And the other end of the spectrum for contrast: a cadence of half
    // the run settles so late its fairness is already altruism-shaped
    // (measured 0.709 vs 0.709).
    assert!(
        (coarse.final_fairness_stat() - altruism.final_fairness_stat()).abs()
            < altruism.final_fairness_stat() * 0.10,
        "epoch=64 fairness must land on altruism's ({:.4} vs {:.4})",
        coarse.final_fairness_stat(),
        altruism.final_fairness_stat()
    );
}

#[test]
fn epoch_limit_infinite_cadence_is_altruism_shaped() {
    // The epoch→∞ limit: an epoch longer than the run never settles, no
    // balances ever exist, and free-riders inside the eternally-open
    // epoch are indistinguishable from honest peers — susceptibility
    // must degenerate to pure altruism's, while a short cadence claws
    // exploitability back.
    let plan = Some(AttackPlan::simple(0.2));
    let never_settles = epoch_run(u64::MAX, plan);
    let tight = epoch_run(1, plan);
    let altruism = baseline(MechanismKind::Altruism, plan);
    let s_inf = never_settles.final_susceptibility();
    let s_tight = tight.final_susceptibility();
    let s_alt = altruism.final_susceptibility();
    assert!(s_alt > 0.0, "the attack must actually leak under altruism");
    // Measured at SEED: 0.1984 vs 0.1984 — with no settlement ever, every
    // grant flows through the same random-altruism channel.
    assert!(
        (s_inf - s_alt).abs() < 0.02,
        "never-settling epoch susceptibility {s_inf:.4} must match altruism's {s_alt:.4}"
    );
    // Per-round settlement claws roughly half the leakage back (measured
    // 0.0998): reward-backed service crowds out the open channel.
    assert!(
        s_tight < s_inf * 0.75,
        "per-round settlement must claw back exploitability ({s_tight:.4} vs {s_inf:.4})"
    );
}

#[test]
fn table2_example_column_matches_paper_via_harness() {
    let r = table2::run(Scale::Quick, SEED);
    for row in &r.rows {
        assert!(
            (row.example_probability - row.paper_example).abs() < 0.001,
            "{}: {} vs paper {}",
            row.algorithm,
            row.example_probability,
            row.paper_example
        );
    }
}
