//! The profiler's determinism contract: phase timers and work counters
//! observe the round loop, they never steer it. A figure run with
//! profiling off, on at full rate, and sampled onto every other slot
//! must produce **byte-identical artifacts** — every CSV, JSON and SVG —
//! for any worker count. Profiling only *adds* `profile.json`, which
//! carries wall-clock data and is therefore kept out of the comparison
//! (as are the other telemetry-only outputs).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use coop_experiments::{load_pack, runners, Executor, OutputDir, Scale, TelemetryOpts};
use coop_telemetry::profile::{phase, work};
use coop_telemetry::{RunProfile, MANIFEST_FILE, PROFILE_FILE};

/// A fresh scratch directory under `target/` for this test run.
fn scratch(tag: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR"))
        .join("profile_byte_identity")
        .join(tag);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Every artifact in `dir` (file name → bytes), excluding telemetry-only
/// outputs: `manifest.json`, `profile.json`, `*.jsonl` and
/// `*_telemetry.csv` hold wall-clock readings or exist only when
/// telemetry is on.
fn artifact_bytes(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut files = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("read artifact dir") {
        let path = entry.expect("dir entry").path();
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .expect("utf-8 file name")
            .to_string();
        if name == MANIFEST_FILE
            || name == PROFILE_FILE
            || name.ends_with(".jsonl")
            || name.ends_with("_telemetry.csv")
        {
            continue;
        }
        files.insert(name, std::fs::read(&path).expect("read artifact"));
    }
    files
}

fn assert_same_artifacts(base_dir: &Path, other_dir: &Path, tag: &str) {
    let base = artifact_bytes(base_dir);
    let other = artifact_bytes(other_dir);
    assert_eq!(
        base.keys().collect::<Vec<_>>(),
        other.keys().collect::<Vec<_>>(),
        "profile={tag} changed the artifact file set"
    );
    for (name, bytes) in &base {
        assert_eq!(
            bytes, &other[name],
            "profile={tag} changed the bytes of {name}"
        );
    }
}

fn profile_opts(every: u64) -> TelemetryOpts {
    TelemetryOpts {
        profile: true,
        profile_every: every,
        ..TelemetryOpts::disabled()
    }
}

fn read_profile(dir: &Path) -> RunProfile {
    let text = std::fs::read_to_string(dir.join(PROFILE_FILE)).expect("profile.json written");
    let profile = RunProfile::parse(&text).expect("profile.json parses");
    profile.validate().expect("profile.json validates");
    profile
}

#[test]
fn fig4_artifacts_are_byte_identical_across_profile_modes() {
    let seed = 63;

    // Baseline: profiling off, two workers.
    let dir_off = scratch("fig4-off");
    let (report_off, _) = runners::fig4::run_with_telemetry(
        Scale::Quick,
        seed,
        &Executor::new(2),
        &TelemetryOpts::disabled(),
        &OutputDir::new(&dir_off),
    );
    assert!(
        !dir_off.join(PROFILE_FILE).exists(),
        "profiling off writes no profile.json"
    );

    // Full-rate profiling on four workers.
    let dir_on = scratch("fig4-on");
    let (report_on, _) = runners::fig4::run_with_telemetry(
        Scale::Quick,
        seed,
        &Executor::new(4),
        &profile_opts(1),
        &OutputDir::new(&dir_on),
    );

    // Sampled profiling (every other slot), single worker.
    let dir_sampled = scratch("fig4-sampled");
    let (report_sampled, _) = runners::fig4::run_with_telemetry(
        Scale::Quick,
        seed,
        &Executor::sequential(),
        &profile_opts(2),
        &OutputDir::new(&dir_sampled),
    );

    assert_eq!(report_off.render(), report_on.render());
    assert_eq!(report_off.render(), report_sampled.render());
    assert_same_artifacts(&dir_off, &dir_on, "on");
    assert_same_artifacts(&dir_off, &dir_sampled, "sampled");

    // The profile itself is structurally sound and attributes the run.
    let full = read_profile(&dir_on);
    assert_eq!(full.artifact, "fig4");
    assert_eq!((full.jobs, full.profiled_jobs), (8, 8));
    let attributed = full.attributed_fraction().expect("sim.run recorded");
    assert!(
        attributed >= 0.95,
        "phases attribute >= 95% of sim wall time, got {attributed}"
    );
    assert!(full.phase(phase::SIM_ALLOCATE).is_some());
    assert!(full.phase(phase::EXEC_BUILD).is_some());
    assert!(full.phase(phase::BATCH_SIMULATE).is_some());
    assert!(full.work_counter(work::PEERS_VISITED) > 0);
    assert!(
        full.work_counter(work::PEERS_PRODUCTIVE) <= full.work_counter(work::PEERS_VISITED)
    );
    let wasted = full.wasted_visit_ratio().expect("visits recorded");
    assert!((0.0..1.0).contains(&wasted), "{wasted}");
    assert_eq!(full.per_job.len(), 8, "one work row per mechanism");

    // Sampling halves the profiled slots (0,2,4,6 of 8) but the
    // deterministic work counters still cover every job.
    let sampled = read_profile(&dir_sampled);
    assert_eq!((sampled.jobs, sampled.profiled_jobs), (8, 4));
    assert_eq!(
        sampled.work_counter(work::PEERS_VISITED),
        full.work_counter(work::PEERS_VISITED),
        "work counters are exact regardless of timer sampling"
    );
}

#[test]
fn fig4_artifacts_are_byte_identical_across_shard_counts() {
    // `--shards` is a wall-clock lever like the profiler: it splits one
    // sim's round across scoped threads and must never show up in the
    // artifact bytes. The matrix crosses it with the other two levers —
    // worker count and profiling — against the unsharded sequential
    // baseline.
    let seed = 63;
    let run = |dir: &Path, jobs: usize, shards: usize, opts: &TelemetryOpts| {
        runners::fig4::run_with_telemetry(
            Scale::Quick,
            seed,
            &Executor::new(jobs).with_shards(shards),
            opts,
            &OutputDir::new(dir),
        )
        .0
        .render()
    };

    let dir_base = scratch("shards-base");
    let base = run(&dir_base, 1, 1, &TelemetryOpts::disabled());

    let dir_s2 = scratch("shards-2-jobs-4");
    let s2 = run(&dir_s2, 4, 2, &TelemetryOpts::disabled());

    let dir_s4 = scratch("shards-4-profiled");
    let s4 = run(&dir_s4, 1, 4, &profile_opts(1));

    assert_eq!(base, s2, "shards=2 × jobs=4 changed the report");
    assert_eq!(base, s4, "shards=4 under profiling changed the report");
    assert_same_artifacts(&dir_base, &dir_s2, "shards=2,jobs=4");
    assert_same_artifacts(&dir_base, &dir_s4, "shards=4,profiled");

    // The sharded profiled run still attributes its phases sanely.
    let profile = read_profile(&dir_s4);
    assert_eq!(profile.jobs, profile.profiled_jobs);
    assert!(profile.work_counter(work::PEERS_VISITED) > 0);
}

#[test]
fn scenario_sweep_is_unchanged_by_profiling() {
    let pack = load_pack("flash-crowd-baseline").expect("built-in scenario loads");
    let seed = 91;
    let run = |dir: &Path, jobs: usize, shards: usize, opts: &TelemetryOpts| {
        let (report, errors) = runners::sweep::try_run_pack(
            &pack,
            Scale::Quick,
            seed,
            1,
            &Executor::new(jobs).with_shards(shards),
            opts,
            &OutputDir::new(dir),
        );
        assert!(errors.is_empty(), "{errors:?}");
        report.render()
    };

    let dir_off = scratch("sweep-off");
    let report_off = run(&dir_off, 1, 1, &TelemetryOpts::disabled());

    let dir_on = scratch("sweep-on");
    let report_on = run(&dir_on, 4, 1, &profile_opts(1));

    // Sharded + profiled sweep against the same baseline.
    let dir_sharded = scratch("sweep-sharded");
    let report_sharded = run(&dir_sharded, 4, 4, &profile_opts(1));

    assert_eq!(report_off, report_on);
    assert_eq!(report_off, report_sharded);
    assert_same_artifacts(&dir_off, &dir_on, "sweep-on");
    assert_same_artifacts(&dir_off, &dir_sharded, "sweep-shards=4");

    let profile = read_profile(&dir_on);
    assert_eq!(profile.jobs, profile.profiled_jobs);
    assert!(profile.attributed_fraction().expect("sim.run recorded") >= 0.95);
    assert!(profile.wasted_visit_ratio().is_some());
}
