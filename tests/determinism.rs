//! Full-stack determinism: identical seeds must give bit-identical
//! simulation outcomes, across mechanisms and attack scenarios; different
//! seeds must actually differ.

use coop_attacks::AttackPlan;
use coop_incentives::MechanismKind;
use coop_swarm::{flash_crowd, SimResult, Simulation, SwarmConfig};

fn config(seed: u64) -> SwarmConfig {
    let mut c = SwarmConfig::tiny_test();
    c.seed = seed;
    c
}

fn run(kind: MechanismKind, seed: u64, plan: Option<AttackPlan>) -> SimResult {
    let config = config(seed);
    let population = flash_crowd(&config, 14, kind, seed);
    let mut builder = Simulation::builder(config).population(population);
    if let Some(plan) = plan {
        builder = builder.attack_plan(plan);
    }
    builder.build().unwrap().run()
}

fn fingerprint(r: &SimResult) -> Vec<(u64, u64, u64, Option<u64>)> {
    r.peers
        .iter()
        .map(|p| {
            (
                p.bytes_sent,
                p.bytes_received_raw,
                p.bytes_received_usable,
                p.completion_s.map(|c| (c * 1000.0) as u64),
            )
        })
        .collect()
}

#[test]
fn identical_seeds_identical_runs_all_mechanisms() {
    for kind in MechanismKind::ALL {
        let a = run(kind, 77, None);
        let b = run(kind, 77, None);
        assert_eq!(fingerprint(&a), fingerprint(&b), "{kind}");
        assert_eq!(a.rounds_run, b.rounds_run, "{kind}");
        assert_eq!(a.totals, b.totals, "{kind}");
        assert_eq!(
            a.fairness_avg.points(),
            b.fairness_avg.points(),
            "{kind} time series"
        );
    }
}

#[test]
fn identical_seeds_identical_runs_under_attack() {
    for kind in [
        MechanismKind::TChain,
        MechanismKind::FairTorrent,
        MechanismKind::Reputation,
    ] {
        let plan = AttackPlan::with_large_view(kind, 0.2);
        let a = run(kind, 88, Some(plan));
        let b = run(kind, 88, Some(plan));
        assert_eq!(fingerprint(&a), fingerprint(&b), "{kind}");
        assert_eq!(
            a.susceptibility.points(),
            b.susceptibility.points(),
            "{kind}"
        );
    }
}

#[test]
fn different_seeds_differ() {
    let a = run(MechanismKind::BitTorrent, 1, None);
    let b = run(MechanismKind::BitTorrent, 2, None);
    assert_ne!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn analysis_is_pure() {
    use coop_experiments::runners::table3;
    use coop_experiments::Scale;
    let a = table3::run(Scale::Quick, 5);
    let b = table3::run(Scale::Quick, 5);
    assert_eq!(a.pi_ir, b.pi_ir);
    for (x, y) in a.rows.iter().zip(&b.rows) {
        assert_eq!(x.exploitable_bps, y.exploitable_bps);
        assert_eq!(x.collusion_probability, y.collusion_probability);
    }
}
