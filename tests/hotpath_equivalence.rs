//! The hot-path equivalence battery: proves both round-loop optimisation
//! generations — the incremental availability index + SoA loop, and the
//! dirty-set loop layered on top of it — are **observably identical** to
//! the naive pre-index path they replaced.
//!
//! Three layers of evidence, from strongest to broadest:
//!
//! 1. Per-mechanism three-way oracle runs — a fig4-sized swarm executed
//!    three times from the same seed: once with `naive_hotpath(true)`
//!    (the pre-index round loop kept behind `coop-swarm`'s
//!    `hotpath-oracle` feature: per-round candidate rebuilds, per-bit
//!    rarest-first picks, full peer-struct scans), once on the indexed
//!    full-scan loop (`RoundLoop::Indexed`), and once on the dirty-set
//!    loop (`RoundLoop::Dirty`, the default). All three [`SimResult`]s
//!    must compare equal, and the dirty result's debug fingerprint must
//!    match a pinned golden constant so *all* paths drifting together is
//!    also caught. A second sweep repeats the three-way comparison with
//!    a churn/fault plan active (outages, departures, link loss,
//!    whitewashing and free-riding tags) — the regime where a stale
//!    dirty set would actually skip work.
//! 2. Artifact byte-identity across worker counts — `fig4` rendered with
//!    `--jobs 1` and `--jobs 4` into separate directories must produce
//!    byte-identical files. Naive-path artifact identity follows from (1)
//!    plus the deterministic write path: artifacts are a pure function of
//!    the `SimResult`s.
//! 3. Component regression pins — `AvailabilityIndex::min_over` and
//!    `pick_rarest_into` against the full-scan `AvailabilityMap::min_over`
//!    and the trait-object `RarestFirstPicker` on fig4-shaped bitfields,
//!    including the pick RNG contract (exactly one draw iff a candidate
//!    exists).
//!
//! If a golden constant changes because simulation semantics intentionally
//! changed, re-pin it and say why in the commit message.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use coop_des::rng::SeedTree;
use coop_experiments::{runners, Executor, OutputDir, Scale, TelemetryOpts};
use coop_incentives::analysis::capacity::CapacityClassMix;
use coop_incentives::MechanismKind;
use coop_piece::{AvailabilityIndex, AvailabilityMap, Bitfield, PiecePicker, RarestFirstPicker};
use coop_swarm::{
    flash_crowd_with, FaultEvent, FaultKind, FaultSchedule, RoundLoop, SimResult, Simulation,
    SimulationBuilder,
};
use coop_telemetry::fingerprint_debug;

const SEED: u64 = 42;

/// Which round-loop implementation a cell runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// Pre-index oracle (`hotpath-oracle` feature).
    Naive,
    /// Indexed full-scan loop: every online peer visited every round.
    Indexed,
    /// Dirty-set loop: only changed peers and their candidates visited.
    Dirty,
}

const MODES: [Mode; 3] = [Mode::Naive, Mode::Indexed, Mode::Dirty];

/// One fig4-sized cell (quick scale: 80 peers, 64 pieces) on the given
/// round loop, optionally under a churn/fault plan. Returned as a
/// builder so tests can attach a recorder before running.
fn build_cell(kind: MechanismKind, mode: Mode, faults: Option<FaultSchedule>) -> SimulationBuilder {
    let config = Scale::Quick.config(SEED);
    let mut population = flash_crowd_with(
        &config,
        Scale::Quick.peers(),
        kind,
        SEED,
        &CapacityClassMix::paper_default(),
        Scale::Quick.arrival_window(),
    );
    if faults.is_some() {
        // Pin arrivals to t=0 so the fault rounds land after every peer
        // has spawned (the builder rejects faults that predate arrival).
        for spec in &mut population {
            spec.arrival = coop_des::SimTime::ZERO;
        }
        // Behavioral churn on top of the fault plan: a whitewasher cycles
        // identities, a free-rider never reciprocates. Both exercise the
        // spawn/depart mark paths of the dirty loop.
        population[3].tags.whitewash_interval = Some(8);
        population[5].tags.compliant = false;
    }
    let mut builder = Simulation::builder(config).population(population);
    if let Some(schedule) = faults {
        builder = builder.fault_schedule(schedule);
    }
    match mode {
        Mode::Naive => builder = builder.naive_hotpath(true),
        Mode::Indexed => builder = builder.round_loop(RoundLoop::Indexed),
        Mode::Dirty => builder = builder.round_loop(RoundLoop::Dirty),
    }
    builder
}

fn run_cell(kind: MechanismKind, mode: Mode, faults: Option<FaultSchedule>) -> SimResult {
    build_cell(kind, mode, faults)
        .build()
        .expect("quick config validates")
        .run()
}

/// The churn/fault plan for the faulted sweep: an outage spanning several
/// rounds, a mid-run departure, and 10% link loss throughout.
fn fault_plan() -> FaultSchedule {
    FaultSchedule::from_events(
        vec![
            FaultEvent { round: 2, peer: 1, kind: FaultKind::OutageStart },
            FaultEvent { round: 3, peer: 0, kind: FaultKind::Depart },
            FaultEvent { round: 6, peer: 1, kind: FaultKind::OutageEnd },
        ],
        0.1,
        SEED,
    )
}

/// Three-way oracle equivalence plus the golden pin for one mechanism.
fn check(kind: MechanismKind, golden: u64) {
    let [naive, indexed, dirty] = MODES.map(|m| run_cell(kind, m, None));
    assert_eq!(
        naive,
        indexed,
        "{}: indexed and naive round loops must produce identical results",
        kind.name()
    );
    assert_eq!(
        indexed,
        dirty,
        "{}: dirty-set and indexed round loops must produce identical results",
        kind.name()
    );
    assert_eq!(
        fingerprint_debug(&dirty),
        golden,
        "{}: result fingerprint drifted from the pinned golden value",
        kind.name()
    );
}

#[test]
fn reciprocity_three_way_agree() {
    check(MechanismKind::Reciprocity, 0xf142_e8cd_df73_62f3);
}

#[test]
fn tchain_three_way_agree() {
    check(MechanismKind::TChain, 0xd770_50a3_a4b5_4488);
}

#[test]
fn bittorrent_three_way_agree() {
    check(MechanismKind::BitTorrent, 0x1747_b4f4_a04f_9a41);
}

#[test]
fn fairtorrent_three_way_agree() {
    check(MechanismKind::FairTorrent, 0xa9e1_af1e_5a0b_1e11);
}

#[test]
fn reputation_three_way_agree() {
    check(MechanismKind::Reputation, 0x7808_d994_c6ab_a357);
}

#[test]
fn altruism_three_way_agree() {
    check(MechanismKind::Altruism, 0x5d96_b918_3757_35a3);
}

/// An epoch-settled cell at an explicit settlement cadence. Unlike
/// [`build_cell`] the mechanism params are varied, because the epoch
/// length is the axis under test: boundary rounds run the extra
/// `on_epoch_close` pass and mark settled peers dirty, so the dirty-set
/// loop must stay equivalent at both a short cadence (boundaries almost
/// every round) and a long one (a handful of boundaries per run).
fn build_epoch_cell(epoch_rounds: u64, mode: Mode) -> SimulationBuilder {
    let mut config = Scale::Quick.config(SEED);
    config.mechanism_params.epoch_rounds = epoch_rounds;
    let population = flash_crowd_with(
        &config,
        Scale::Quick.peers(),
        MechanismKind::EpochSettlement,
        SEED,
        &CapacityClassMix::paper_default(),
        Scale::Quick.arrival_window(),
    );
    let builder = Simulation::builder(config).population(population);
    match mode {
        Mode::Naive => builder.naive_hotpath(true),
        Mode::Indexed => builder.round_loop(RoundLoop::Indexed),
        Mode::Dirty => builder.round_loop(RoundLoop::Dirty),
    }
}

/// Three-way oracle equivalence plus the golden pin for one epoch length.
fn check_epoch(epoch_rounds: u64, golden: u64) {
    let [naive, indexed, dirty] = MODES.map(|m| {
        build_epoch_cell(epoch_rounds, m)
            .build()
            .expect("quick config validates")
            .run()
    });
    assert_eq!(
        naive, indexed,
        "epoch={epoch_rounds}: indexed and naive round loops must produce identical results"
    );
    assert_eq!(
        indexed, dirty,
        "epoch={epoch_rounds}: dirty-set and indexed round loops must produce identical results"
    );
    assert_eq!(
        fingerprint_debug(&dirty),
        golden,
        "epoch={epoch_rounds}: result fingerprint drifted from the pinned golden value"
    );
}

/// A consensus-reputation cell under the combined adaptive attack:
/// threshold-aware defectors, Sybil report stuffers and ban evaders
/// split round-robin across 20% of the crowd. The attack is driven by
/// observable mechanism state (strike levels, served bans), so it is the
/// sharpest stress for round-loop equivalence: a stale dirty set would
/// desync the ban transitions the attackers key off.
fn build_consensus_cell(mode: Mode) -> SimulationBuilder {
    let config = Scale::Quick.config(SEED);
    let mut population = flash_crowd_with(
        &config,
        Scale::Quick.peers(),
        MechanismKind::ConsensusReputation,
        SEED,
        &CapacityClassMix::paper_default(),
        Scale::Quick.arrival_window(),
    );
    coop_attacks::apply_attack(
        &mut population,
        &coop_attacks::AttackPlan::adaptive_mix(0.2),
        SEED,
    );
    let builder = Simulation::builder(config).population(population);
    match mode {
        Mode::Naive => builder.naive_hotpath(true),
        Mode::Indexed => builder.round_loop(RoundLoop::Indexed),
        Mode::Dirty => builder.round_loop(RoundLoop::Dirty),
    }
}

#[test]
fn consensus_three_way_agree_under_adaptive_attack() {
    let [naive, indexed, dirty] = MODES.map(|m| {
        build_consensus_cell(m)
            .build()
            .expect("quick config validates")
            .run()
    });
    assert_eq!(
        naive, indexed,
        "consensus: indexed and naive round loops must produce identical results"
    );
    assert_eq!(
        indexed, dirty,
        "consensus: dirty-set and indexed round loops must produce identical results"
    );
    // The cell must actually exercise the consensus layer, or the
    // equivalence claim is vacuous.
    let summary = dirty.consensus.expect("consensus summary present");
    assert!(summary.reports > 0, "no reports were aggregated");
    assert!(summary.disputes > 0, "the adaptive attack raised no disputes");
    assert_eq!(
        fingerprint_debug(&dirty),
        0x0bd0_dee6_271c_9f15,
        "consensus: result fingerprint drifted from the pinned golden value"
    );
}

#[test]
fn consensus_dirty_loop_does_strictly_less_visiting() {
    // Bans shrink the visit set: banned peers are skipped wholesale by
    // the allocation scan and evicted from every candidate row, so on the
    // same adaptive-attack workload the dirty loop must visit strictly
    // fewer peers than the indexed full scan while producing the
    // identical result.
    use coop_telemetry::profile::work;
    use coop_telemetry::{Recorder, TelemetryConfig};
    let traced = |mode| {
        build_consensus_cell(mode)
            .recorder(Recorder::enabled(TelemetryConfig::default()))
            .build()
            .expect("quick config validates")
            .run_traced()
    };
    let (indexed, indexed_report) = traced(Mode::Indexed);
    let (dirty, dirty_report) = traced(Mode::Dirty);
    assert_eq!(indexed, dirty, "visit accounting must not change results");
    let indexed_visits = indexed_report.counter(work::PEERS_VISITED);
    let dirty_visits = dirty_report.counter(work::PEERS_VISITED);
    assert!(
        dirty_visits < indexed_visits,
        "dirty loop visited {dirty_visits} peers, indexed {indexed_visits} — expected strictly fewer"
    );
}

#[test]
fn epoch_settlement_three_way_agree_short_epochs() {
    check_epoch(2, 0x8a51_97be_7d96_99a0);
}

#[test]
fn epoch_settlement_three_way_agree_long_epochs() {
    check_epoch(64, 0x1389_739d_a649_38c8);
}

#[test]
fn epoch_settlement_dirty_loop_never_does_more_work_and_settles() {
    // EpochSettlement is an always-granting mechanism: any spare budget
    // falls back to random altruism, so every online peer produces a
    // grant every round and the dirty set saturates — the dirty loop
    // degenerates to exactly the full scan, like pure [`Altruism`] does
    // (the strictly-fewer-visits win belongs to choking mechanisms; see
    // `dirty_loop_does_strictly_less_visiting`). What the epoch cadence
    // must NOT do is make the dirty loop visit *more* than the scan: the
    // boundary pass re-marks settled peers, and those marks must stay
    // inside the already-saturated visit set. The settlement counters
    // prove the cadence actually fired while visits stayed pinned.
    use coop_telemetry::profile::work;
    use coop_telemetry::{Recorder, TelemetryConfig};
    let traced = |mode| {
        build_epoch_cell(16, mode)
            .recorder(Recorder::enabled(TelemetryConfig::default()))
            .build()
            .expect("quick config validates")
            .run_traced()
    };
    let (indexed, indexed_report) = traced(Mode::Indexed);
    let (dirty, dirty_report) = traced(Mode::Dirty);
    assert_eq!(indexed, dirty, "visit accounting must not change results");
    let indexed_visits = indexed_report.counter(work::PEERS_VISITED);
    let dirty_visits = dirty_report.counter(work::PEERS_VISITED);
    assert_eq!(
        dirty_visits, indexed_visits,
        "always-granting saturation: the dirty loop must collapse to the \
         full scan, no more and no less"
    );
    // The saturation is the always-granting class property, not an
    // epoch-pass artifact: pure Altruism shows the identical collapse.
    let altruism_traced = |mode| {
        build_cell(MechanismKind::Altruism, mode, None)
            .recorder(Recorder::enabled(TelemetryConfig::default()))
            .build()
            .expect("quick config validates")
            .run_traced()
    };
    let (_, alt_indexed) = altruism_traced(Mode::Indexed);
    let (_, alt_dirty) = altruism_traced(Mode::Dirty);
    assert_eq!(
        alt_dirty.counter(work::PEERS_VISITED),
        alt_indexed.counter(work::PEERS_VISITED),
        "altruism no longer saturates the dirty set — re-examine the \
         epoch saturation claim above"
    );
    for report in [&indexed_report, &dirty_report] {
        let settlements = report.counter(work::EPOCH_SETTLEMENTS);
        let boundaries = report.counter(work::EPOCH_BOUNDARIES);
        assert!(settlements > 0, "no epoch settlements fired");
        assert!(boundaries > 0, "no epoch boundaries recorded");
        assert!(
            settlements >= boundaries,
            "each boundary settles at least one peer ({settlements} < {boundaries})"
        );
    }
    // Per-transfer mechanisms must pay nothing for the epoch gate: their
    // reports carry no settlement counters at all.
    assert_eq!(alt_indexed.counter(work::EPOCH_SETTLEMENTS), 0);
    assert_eq!(alt_indexed.counter(work::EPOCH_BOUNDARIES), 0);
}

#[test]
fn three_way_agree_under_churn_and_faults() {
    // The dirty loop earns its keep exactly when peers flap: outages,
    // departures, lost deliveries and identity churn all mutate the set
    // of peers worth visiting. Every mechanism — including the
    // epoch-settled seventh, whose boundary pass must not drift under
    // churn — must stay three-way identical with the full fault plan
    // active.
    for kind in MechanismKind::EXTENDED {
        let [naive, indexed, dirty] = MODES.map(|m| run_cell(kind, m, Some(fault_plan())));
        assert_eq!(
            naive,
            indexed,
            "{}: indexed loop diverged from oracle under faults",
            kind.name()
        );
        assert_eq!(
            indexed,
            dirty,
            "{}: dirty-set loop diverged under faults",
            kind.name()
        );
    }
}

#[test]
fn dirty_loop_does_strictly_less_visiting() {
    // Not an equivalence claim but the reason the loop exists: on the
    // same workload the dirty loop must visit fewer peers than the
    // full-scan loop while producing the identical result (checked
    // above). Reciprocity is the sharpest case — allocate is memoryless
    // and never grants (Lemma 2), so after one grantless round the dirty
    // loop drops a peer until an input changes; dense always-granting
    // mechanisms like BitTorrent legitimately re-mark everyone. Work
    // counters ride on the telemetry report, which needs an attached
    // recorder (run_traced alone returns an empty report).
    use coop_telemetry::profile::work;
    use coop_telemetry::{Recorder, TelemetryConfig};
    let traced = |mode| {
        build_cell(MechanismKind::Reciprocity, mode, None)
            .recorder(Recorder::enabled(TelemetryConfig::default()))
            .build()
            .expect("quick config validates")
            .run_traced()
    };
    let (indexed, indexed_report) = traced(Mode::Indexed);
    let (dirty, dirty_report) = traced(Mode::Dirty);
    assert_eq!(indexed, dirty, "visit accounting must not change results");
    let indexed_visits = indexed_report.counter(work::PEERS_VISITED);
    let dirty_visits = dirty_report.counter(work::PEERS_VISITED);
    assert!(
        dirty_visits < indexed_visits,
        "dirty loop visited {dirty_visits} peers, indexed {indexed_visits} — expected strictly fewer"
    );
}

/// A fresh scratch directory under `target/` for this test run.
fn scratch(tag: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR"))
        .join("hotpath_equivalence")
        .join(tag);
    // Stale files from a previous run would corrupt the comparison.
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Every file in `dir`, name → bytes.
fn dir_bytes(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut files = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("read artifact dir") {
        let path = entry.expect("dir entry").path();
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .expect("utf-8 file name")
            .to_string();
        files.insert(name, std::fs::read(&path).expect("read artifact"));
    }
    files
}

#[test]
fn fig4_artifacts_are_byte_identical_across_worker_counts() {
    let dir_seq = scratch("jobs1");
    let (report_seq, _) = runners::fig4::run_with_telemetry(
        Scale::Quick,
        SEED,
        &Executor::new(1),
        &TelemetryOpts::disabled(),
        &OutputDir::new(&dir_seq),
    );

    let dir_par = scratch("jobs4");
    let (report_par, _) = runners::fig4::run_with_telemetry(
        Scale::Quick,
        SEED,
        &Executor::new(4),
        &TelemetryOpts::disabled(),
        &OutputDir::new(&dir_par),
    );

    assert_eq!(
        report_seq.render(),
        report_par.render(),
        "rendered fig4 report must not depend on worker count"
    );

    let seq = dir_bytes(&dir_seq);
    let par = dir_bytes(&dir_par);
    assert!(!seq.is_empty(), "fig4 wrote no artifacts");
    assert_eq!(
        seq.keys().collect::<Vec<_>>(),
        par.keys().collect::<Vec<_>>(),
        "artifact sets differ between --jobs 1 and --jobs 4"
    );
    for (name, bytes) in &seq {
        assert_eq!(
            bytes, &par[name],
            "artifact {name} differs between --jobs 1 and --jobs 4"
        );
    }
}

/// Fig4-shaped bitfields: the quick-scale piece count, 80 peers whose
/// holdings are drawn from a seeded RNG with uneven per-piece density.
fn fig4_shaped_fields() -> (u32, Vec<Bitfield>) {
    use rand::Rng as _;
    let pieces = Scale::Quick.config(SEED).file.num_pieces();
    let mut rng = SeedTree::new(SEED).rng(7);
    let fields = (0..Scale::Quick.peers())
        .map(|_| {
            let mut bf = Bitfield::new(pieces);
            for i in 0..pieces {
                if rng.gen_bool(f64::from(1 + i % 7) / 10.0) {
                    bf.set(i);
                }
            }
            bf
        })
        .collect();
    (pieces, fields)
}

#[test]
fn index_min_over_matches_full_scan_on_fig4_shapes() {
    let (pieces, fields) = fig4_shaped_fields();
    let mut map = AvailabilityMap::new(pieces);
    let mut index = AvailabilityIndex::new(pieces);
    for bf in &fields {
        map.add_peer(bf);
        index.add_peer(bf);
    }
    for (p, bf) in fields.iter().enumerate() {
        // The hot-path query shape: minimum availability over the pieces
        // this peer still needs.
        let mut needed = Bitfield::new(pieces);
        for i in 0..pieces {
            if !bf.get(i) {
                needed.set(i);
            }
        }
        assert_eq!(
            index.min_over(&needed),
            map.min_over(needed.iter_ones()),
            "peer {p}: indexed min_over diverged from the full scan"
        );
    }
    // Degenerate shapes: empty set and the full piece range.
    let empty = Bitfield::new(pieces);
    assert_eq!(index.min_over(&empty), None);
    let mut all = Bitfield::new(pieces);
    for i in 0..pieces {
        all.set(i);
    }
    assert_eq!(index.min_over(&all), map.min_over(all.iter_ones()));
}

#[test]
fn index_picks_match_rarest_first_picker_on_fig4_shapes() {
    use rand::Rng as _;
    let (pieces, fields) = fig4_shaped_fields();
    let mut index = AvailabilityIndex::new(pieces);
    for bf in &fields {
        index.add_peer(bf);
    }
    let mut ties = Vec::new();
    for (p, held) in fields.iter().enumerate() {
        let offer = &fields[(p + 1) % fields.len()];
        // Identical RNG streams: the indexed pick must consume exactly the
        // draws the naive picker does, or downstream decisions desync.
        let mut naive_rng = SeedTree::new(SEED).rng(p as u64);
        let mut fast_rng = SeedTree::new(SEED).rng(p as u64);
        let naive = RarestFirstPicker.pick(held, offer, index.map(), &mut naive_rng);
        let fast = index.pick_rarest_into(held, offer, &mut ties, &mut fast_rng);
        assert_eq!(naive, fast, "peer {p}: pick diverged");
        assert_eq!(
            naive_rng.gen_range(0..u64::MAX),
            fast_rng.gen_range(0..u64::MAX),
            "peer {p}: RNG streams desynced after the pick"
        );
    }
}
