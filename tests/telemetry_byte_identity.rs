//! The tentpole guarantee of the telemetry layer: observing a run never
//! changes it. A figure run with telemetry off, on at full rate, and on
//! with aggressive sampling must produce **byte-identical artifacts** —
//! every CSV, JSON and SVG — because the recorder draws no randomness and
//! no simulation branch consults it. Telemetry only *adds* outputs (the
//! JSONL trace and `manifest.json`), which carry wall-clock data and are
//! therefore kept out of the comparison.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use coop_experiments::{runners, Executor, OutputDir, Scale, TelemetryOpts};
use coop_telemetry::{json, RunManifest, MANIFEST_FILE};

/// A fresh scratch directory under `target/` for this test run.
fn scratch(tag: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR"))
        .join("telemetry_byte_identity")
        .join(tag);
    // Stale files from a previous run would corrupt the comparison.
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Every artifact in `dir` (file name → bytes), excluding telemetry-only
/// outputs: `manifest.json` and `*.jsonl` hold wall-clock readings, and
/// `*_telemetry.csv` files exist only when telemetry is on (their probe
/// cadence follows `--probe-every`).
fn artifact_bytes(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut files = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("read artifact dir") {
        let path = entry.expect("dir entry").path();
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .expect("utf-8 file name")
            .to_string();
        if name == MANIFEST_FILE || name.ends_with(".jsonl") || name.ends_with("_telemetry.csv") {
            continue;
        }
        files.insert(name, std::fs::read(&path).expect("read artifact"));
    }
    files
}

#[test]
fn fig4_artifacts_are_byte_identical_across_telemetry_modes() {
    let seed = 61;
    let executor = Executor::new(2);

    // Baseline: telemetry off.
    let dir_off = scratch("off");
    let (report_off, trace_off) = runners::fig4::run_with_telemetry(
        Scale::Quick,
        seed,
        &executor,
        &TelemetryOpts::disabled(),
        &OutputDir::new(&dir_off),
    );
    assert!(trace_off.is_none(), "disabled telemetry gathers nothing");

    // Full-rate telemetry with a JSONL trace.
    let dir_on = scratch("on");
    let trace_path = scratch("trace-on").join("fig4.jsonl");
    let opts_on = TelemetryOpts {
        enabled: true,
        trace_out: Some(trace_path.clone()),
        probe_every: 1,
        ..TelemetryOpts::disabled()
    };
    let (report_on, trace_on) = runners::fig4::run_with_telemetry(
        Scale::Quick,
        seed,
        &executor,
        &opts_on,
        &OutputDir::new(&dir_on),
    );
    let trace_on = trace_on.expect("telemetry on gathers a trace");

    // Sparse sampling on a different worker count.
    let dir_sampled = scratch("sampled");
    let opts_sampled = TelemetryOpts {
        enabled: true,
        trace_out: None,
        probe_every: 7,
        ..TelemetryOpts::disabled()
    };
    let (report_sampled, _) = runners::fig4::run_with_telemetry(
        Scale::Quick,
        seed,
        &Executor::sequential(),
        &opts_sampled,
        &OutputDir::new(&dir_sampled),
    );

    // The rendered reports agree exactly.
    assert_eq!(report_off.render(), report_on.render());
    assert_eq!(report_off.render(), report_sampled.render());

    // Every artifact file is byte-identical across the three runs.
    let base = artifact_bytes(&dir_off);
    assert!(
        base.len() >= 40,
        "fig4 writes CSV/JSON/SVG artifacts, found {}",
        base.len()
    );
    for (tag, dir) in [("on", &dir_on), ("sampled", &dir_sampled)] {
        let other = artifact_bytes(dir);
        assert_eq!(
            base.keys().collect::<Vec<_>>(),
            other.keys().collect::<Vec<_>>(),
            "telemetry={tag} changed the artifact file set"
        );
        for (name, bytes) in &base {
            assert_eq!(
                bytes, &other[name],
                "telemetry={tag} changed the bytes of {name}"
            );
        }
    }

    // Telemetry-only outputs exist exactly where requested and parse.
    assert!(
        !dir_off.join(MANIFEST_FILE).exists(),
        "telemetry off writes no manifest"
    );
    let probe_csv = "fig4_round_probes_telemetry.csv";
    assert!(
        !dir_off.join(probe_csv).exists(),
        "telemetry off writes no probe CSV"
    );
    let probe_text = std::fs::read_to_string(dir_on.join(probe_csv)).expect("probe CSV written");
    let mut probe_lines = probe_text.lines();
    assert_eq!(
        probe_lines.next(),
        Some("mechanism,seed,round,sim_s,active,bootstrapped,completed,inflight")
    );
    assert!(probe_lines.count() > 0, "probe rows recorded");
    let manifest_text =
        std::fs::read_to_string(dir_on.join(MANIFEST_FILE)).expect("manifest written");
    let manifest = RunManifest::parse(&manifest_text).expect("manifest parses");
    assert_eq!(manifest.artifact, "fig4");
    assert_eq!(manifest.seed, seed);
    assert_eq!(manifest.attack, "none");
    assert_eq!(manifest.mechanisms.len(), 8);
    assert!(manifest.events_kept > 0);
    assert!(
        manifest.counters.iter().any(|(n, v)| n == "swarm.rounds" && *v > 0),
        "manifest carries merged counters"
    );
    assert!(
        manifest.phases.iter().any(|p| p.name == "simulate"),
        "manifest records wall-clock phases"
    );

    // Same config either way → same fingerprint in the sampled manifest.
    let sampled_manifest = RunManifest::parse(
        &std::fs::read_to_string(dir_sampled.join(MANIFEST_FILE)).expect("sampled manifest"),
    )
    .expect("sampled manifest parses");
    assert_eq!(
        manifest.config_fingerprint,
        sampled_manifest.config_fingerprint
    );

    // The JSONL trace parses line by line and matches the kept count.
    let trace_text = std::fs::read_to_string(&trace_path).expect("trace written");
    let mut lines = 0u64;
    for line in trace_text.lines() {
        let doc = json::parse(line).expect("trace line parses");
        assert!(doc.get("type").and_then(json::Json::as_str).is_some());
        lines += 1;
    }
    assert_eq!(lines, trace_on.events_kept(), "trace line count matches");
    assert_eq!(lines, manifest.events_kept);
}

#[test]
fn replicated_fig4_is_unchanged_by_telemetry() {
    let seeds = [81, 82];
    let executor = Executor::new(2);

    let dir_off = scratch("rep-off");
    let (report_off, _) = runners::fig4::run_replicated_with_telemetry(
        Scale::Quick,
        &seeds,
        &executor,
        &TelemetryOpts::disabled(),
        &OutputDir::new(&dir_off),
    );

    let dir_on = scratch("rep-on");
    let opts = TelemetryOpts {
        enabled: true,
        trace_out: None,
        probe_every: 3,
        ..TelemetryOpts::disabled()
    };
    let (report_on, trace) = runners::fig4::run_replicated_with_telemetry(
        Scale::Quick,
        &seeds,
        &executor,
        &opts,
        &OutputDir::new(&dir_on),
    );
    assert_eq!(report_off.render(), report_on.render());

    let trace = trace.expect("trace gathered");
    assert_eq!(trace.jobs.len(), 16, "8 mechanisms × 2 seeds");

    let base = artifact_bytes(&dir_off);
    let other = artifact_bytes(&dir_on);
    assert_eq!(base, other, "telemetry changed replicated artifacts");

    let manifest = RunManifest::parse(
        &std::fs::read_to_string(dir_on.join(MANIFEST_FILE)).expect("manifest"),
    )
    .expect("manifest parses");
    assert_eq!(manifest.replicates, 2);
    assert_eq!(manifest.mechanisms.len(), 8, "labels deduplicated");
}
