//! The fault subsystem's determinism guarantee: a churned run is
//! byte-identical across worker counts. Fault schedules are pre-drawn at
//! build time from the run's seed and per-transfer loss is decided by a
//! pure hash, so nothing about fault timing can depend on scheduling
//! order — this test pins that end to end, from raw results to the bytes
//! of the artifacts on disk.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use coop_experiments::runners::fig4_churn;
use coop_experiments::{Executor, OutputDir, Scale, SimJob, TelemetryOpts};
use coop_faults::FaultPlan;
use coop_incentives::MechanismKind;
use coop_telemetry::MANIFEST_FILE;

/// A churn + outage + loss plan exercising every fault path at once.
fn stress_plan() -> FaultPlan {
    FaultPlan::churn(0.008).with_outages(0.4, 5).with_loss(0.05)
}

#[test]
fn churned_results_are_identical_across_worker_counts() {
    let jobs: Vec<SimJob> = MechanismKind::ALL
        .iter()
        .map(|&kind| SimJob {
            kind,
            scale: Scale::Quick,
            seed: 91,
            plan: None,
            faults: Some(stress_plan()),
            workload: None,
        })
        .collect();
    let sequential = Executor::sequential().run_sims(&jobs);
    let parallel = Executor::new(8).run_sims(&jobs);
    // SimResult's PartialEq compares every recorded number bit-for-bit.
    assert_eq!(sequential, parallel, "worker count leaked into a churned run");
    assert!(
        sequential
            .iter()
            .any(|r| r.totals.fault_dropped_bytes > 0),
        "the stress plan actually dropped bytes"
    );
}

/// A fresh scratch directory under `target/` for this test run.
fn scratch(tag: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR"))
        .join("churn_determinism")
        .join(tag);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Every artifact in `dir` (file name → bytes), excluding telemetry-only
/// outputs that carry wall-clock readings.
fn artifact_bytes(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut files = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("read artifact dir") {
        let path = entry.expect("dir entry").path();
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .expect("utf-8 file name")
            .to_string();
        if name == MANIFEST_FILE || name.ends_with(".jsonl") || name.ends_with("_telemetry.csv") {
            continue;
        }
        files.insert(name, std::fs::read(&path).expect("read artifact"));
    }
    files
}

#[test]
fn churn_sweep_artifacts_are_byte_identical_across_worker_counts() {
    let multipliers = [1.0];

    let dir_seq = scratch("jobs1");
    let (report_seq, _) = fig4_churn::run_sweep(
        Scale::Quick,
        93,
        Some(stress_plan()),
        &multipliers,
        &Executor::sequential(),
        &TelemetryOpts::disabled(),
        &OutputDir::new(&dir_seq),
    );

    let dir_par = scratch("jobs4");
    let (report_par, _) = fig4_churn::run_sweep(
        Scale::Quick,
        93,
        Some(stress_plan()),
        &multipliers,
        &Executor::new(4),
        &TelemetryOpts::disabled(),
        &OutputDir::new(&dir_par),
    );

    assert_eq!(report_seq.render(), report_par.render());
    let base = artifact_bytes(&dir_seq);
    let other = artifact_bytes(&dir_par);
    assert!(!base.is_empty(), "the sweep writes artifacts");
    assert_eq!(
        base.keys().collect::<Vec<_>>(),
        other.keys().collect::<Vec<_>>(),
        "worker count changed the artifact file set"
    );
    for (name, bytes) in &base {
        assert_eq!(bytes, &other[name], "worker count changed the bytes of {name}");
    }
}
