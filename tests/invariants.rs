//! Cross-mechanism invariants **at scale**: the conservation and
//! monotonicity laws from `tests/conservation.rs` re-asserted on the
//! populations the SoA hot path was built for (N ∈ {100, 1000, 5000}),
//! with and without fig4-churn-style fault plans.
//!
//! The laws themselves are population-independent:
//!
//! * byte conservation with the fault term — every byte a sender paid for
//!   was either received by exactly one peer or dropped by a fault:
//!   `uploaded == received_raw + fault_dropped_bytes`;
//! * the cumulative bootstrapped/completed fraction series are monotone
//!   nondecreasing and stay within [0, 1].
//!
//! The file is deliberately tiny (16 pieces) and the round count capped so
//! the 5000-peer cells stay affordable in debug builds; the point is the
//! population size, which is what exercises the SoA arrays, the CSR
//! adjacency, and the incremental index under churn-driven membership
//! change.

use coop_des::Duration;
use coop_experiments::runners::fig4_churn::DEFAULT_CHURN_RATE;
use coop_faults::FaultPlan;
use coop_incentives::analysis::capacity::CapacityClassMix;
use coop_incentives::MechanismKind;
use coop_piece::FileSpec;
use coop_swarm::{flash_crowd_with, SimResult, Simulation, SwarmConfig};

/// A debug-affordable scale config: tiny file, modest degree, capped
/// rounds. Population is supplied per cell.
fn scale_config(seed: u64) -> SwarmConfig {
    let mut c = SwarmConfig::scaled_default();
    c.file = FileSpec::new(1024 * 1024, 64 * 1024);
    c.neighbor_degree = 12;
    c.seeder_bps = 256_000.0;
    c.max_rounds = 150;
    c.sample_every = 4;
    c.seed = seed;
    c
}

fn run_at(
    n: usize,
    kind: MechanismKind,
    plan: Option<FaultPlan>,
    seed: u64,
) -> (SimResult, SwarmConfig) {
    let config = scale_config(seed);
    let population = flash_crowd_with(
        &config,
        n,
        kind,
        seed,
        &CapacityClassMix::paper_default(),
        Duration::from_secs(10),
    );
    let mut builder = Simulation::builder(config.clone()).population(population);
    if let Some(plan) = plan {
        builder = builder.fault_plan(plan);
    }
    (builder.build().expect("config validates").run(), config)
}

/// The fig4-churn sweep's fault shape at its default operating point.
fn churn_plan() -> FaultPlan {
    FaultPlan::churn(DEFAULT_CHURN_RATE).with_loss(0.05)
}

fn assert_invariants(r: &SimResult, label: &str) {
    // Eq. (1) with the fault term: every byte sent was either received by
    // exactly one peer or dropped in transit by an injected fault.
    let sent: u64 = r.peers.iter().map(|p| p.bytes_sent).sum::<u64>() + r.totals.uploaded_seeder;
    let received: u64 = r.peers.iter().map(|p| p.bytes_received_raw).sum();
    assert_eq!(
        sent,
        received + r.totals.fault_dropped_bytes,
        "{label}: byte conservation (uploaded == received_raw + fault_dropped)"
    );
    assert_eq!(r.totals.uploaded_total(), sent, "{label}: totals agree");

    for p in &r.peers {
        assert!(
            p.bytes_received_usable <= p.bytes_received_raw,
            "{label}: usable ≤ raw for {:?}",
            p.id
        );
    }

    // Cumulative fraction series are monotone nondecreasing in [0, 1].
    for (name, series) in [
        ("bootstrapped_frac", &r.bootstrapped_frac),
        ("completed_frac", &r.completed_frac),
    ] {
        let pts = series.points();
        for w in pts.windows(2) {
            assert!(
                w[1].1 >= w[0].1 - 1e-12,
                "{label}: {name} series must be monotone"
            );
        }
        for &(_, v) in pts {
            assert!(
                (0.0..=1.0 + 1e-12).contains(&v),
                "{label}: {name} value {v} out of range"
            );
        }
    }
}

#[test]
fn invariants_hold_at_100_for_all_mechanisms() {
    for kind in MechanismKind::ALL {
        let (r, _) = run_at(100, kind, None, 21);
        assert_invariants(&r, &format!("{}@100", kind.name()));
    }
}

#[test]
fn invariants_hold_at_100_under_churn_for_all_mechanisms() {
    for kind in MechanismKind::ALL {
        let (r, _) = run_at(100, kind, Some(churn_plan()), 22);
        let label = format!("{}@100+churn", kind.name());
        assert_invariants(&r, &label);
    }
}

#[test]
fn invariants_hold_at_1000() {
    for kind in [
        MechanismKind::BitTorrent,
        MechanismKind::TChain,
        MechanismKind::Altruism,
    ] {
        let (r, _) = run_at(1000, kind, None, 23);
        assert_invariants(&r, &format!("{}@1000", kind.name()));
    }
}

#[test]
fn invariants_hold_at_1000_under_churn() {
    for kind in [MechanismKind::BitTorrent, MechanismKind::FairTorrent] {
        let (r, _) = run_at(1000, kind, Some(churn_plan()), 24);
        let label = format!("{}@1000+churn", kind.name());
        assert_invariants(&r, &label);
        // The plan injects real loss at this scale; the fault term must be
        // live, not vacuously zero.
        assert!(
            r.totals.fault_dropped_bytes > 0,
            "{label}: expected injected loss to drop bytes"
        );
    }
}

#[test]
fn invariants_hold_at_5000() {
    let (r, _) = run_at(5000, MechanismKind::BitTorrent, None, 25);
    assert_invariants(&r, "bittorrent@5000");
    let (r, _) = run_at(5000, MechanismKind::TChain, Some(churn_plan()), 26);
    assert_invariants(&r, "tchain@5000+churn");
}
