//! The experiment harness must actually produce its artifacts: CSV series,
//! JSON summaries and SVG panels for each figure run.

use coop_experiments::runners::fig4;
use coop_experiments::Scale;
use std::path::Path;

#[test]
fn fig4_writes_csv_json_and_svg_artifacts() {
    let _ = fig4::run(Scale::Quick, 7);
    let dir = Path::new("target/experiments");
    let expectations = [
        "fig4_altruism_quick_completion_cdf.csv",
        "fig4_altruism_quick_fairness_vs_time.csv",
        "fig4_altruism_quick_bootstrapped_vs_time.csv",
        "fig4_altruism_quick_peers.csv",
        "fig4_altruism_quick_bandwidth_by_reason.csv",
        "fig4_tchain_quick_completion_cdf.csv",
        "fig4_quick.json",
        "fig4a_completion_cdf_quick.svg",
        "fig4b_fairness_quick.svg",
        "fig4c_bootstrapped_quick.svg",
        "fig4d_susceptibility_quick.svg",
    ];
    for name in expectations {
        let path = dir.join(name);
        assert!(path.exists(), "missing artifact {name}");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(!text.is_empty(), "{name} is empty");
        if name.ends_with(".svg") {
            assert!(text.contains("</svg>"), "{name} is not an SVG");
        }
        if name.ends_with(".csv") {
            assert!(text.lines().count() >= 1, "{name} has no header");
        }
    }
}

#[test]
fn peer_records_csv_is_well_formed() {
    let _ = fig4::run(Scale::Quick, 8);
    let path = Path::new("target/experiments/fig4_bittorrent_quick_peers.csv");
    let text = std::fs::read_to_string(path).unwrap();
    let mut lines = text.lines();
    let header = lines.next().unwrap();
    assert!(header.starts_with("peer_id,capacity_bps,compliant"));
    let cols = header.split(',').count();
    let mut rows = 0;
    for line in lines {
        assert_eq!(line.split(',').count(), cols, "ragged row: {line}");
        rows += 1;
    }
    assert_eq!(rows, Scale::Quick.peers(), "one row per peer identity");
}
